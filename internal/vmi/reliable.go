package vmi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"gridmdo/internal/metrics"
)

// Reliable is an end-to-end reliability layer between the runtime and the
// TCP device: per-peer sequence numbers, cumulative acks piggybacked on
// every data frame (plus delayed standalone acks for one-way flows), a
// bounded retransmit buffer with timeout and exponential backoff,
// duplicate suppression and in-order delivery on receive, and transparent
// reconnection of dropped TCP connections (the next send or retransmit
// re-dials through the transport's existing retry path). Transport-level
// errors — write failures, dropped connections, CRC-corrupt frames — are
// absorbed and repaired by retransmission; the error handler installed via
// SetErrHandler (the runtime's fail-fast hook) fires only when a frame
// exhausts its retransmit budget, turning PR 1's fail-fast into graceful
// degradation with a hard backstop.
//
// Layering: transform devices (compress, checksum, cipher) run above
// Reliable, fault devices and the socket below it, so every fault the
// chaos harness injects on the "wire" side is inside the reliability
// envelope:
//
//	runtime → wire send chain → Reliable → SendFaults → TCP ⇢ socket
//	runtime ← wire recv chain ← Reliable ← RecvFaults ← TCP ⇠ socket
//
// Each data frame's body is prefixed with a 28-byte reliability header
// carrying the sequence number, the cumulative ack, and a CRC of the
// payload; frames without FlagReliable (pre-reliability senders, control
// traffic) pass through untouched.

// Reliability header layout (big-endian):
//
//	off len field
//	  0   4  magic 0x524C4231 ("RLB1")
//	  4   1  kind (1 data, 2 ack)
//	  5   3  epoch (24-bit cluster-membership epoch; 0 = no fencing)
//	  8   8  seq (data frames; 0 on pure acks)
//	 16   8  ack (cumulative: every seq <= ack was received; 0 = none)
//	 24   4  CRC-32C of the header's first 24 bytes followed by the
//	         payload — covering seq, ack, and epoch matters: a bit flip
//	         in the ack field would otherwise pass a payload-only CRC and
//	         free unacked retransmit entries, and a flipped epoch could
//	         fence (or unfence) a frame the sender never stamped
const (
	relMagic     = 0x524C4231
	relHeaderLen = 28

	relKindData byte = 1
	relKindAck  byte = 2

	// MaxEpoch is the largest membership epoch the 24-bit header field
	// carries; SetEpoch masks to this range.
	MaxEpoch = 1<<24 - 1
)

// ErrBadRelHeader is returned when decoding a reliability header that is
// truncated, mis-tagged, or of unknown kind.
var ErrBadRelHeader = errors.New("vmi: bad reliability header")

// RelHeader is the decoded reliability header of one frame.
type RelHeader struct {
	Kind  byte
	Epoch uint32 // 24-bit membership epoch (0 = sender not fencing)
	Seq   uint64
	Ack   uint64
	CRC   uint32
}

// AppendRelHeader appends h's wire encoding to dst.
func AppendRelHeader(dst []byte, h RelHeader) []byte {
	var b [relHeaderLen]byte
	binary.BigEndian.PutUint32(b[0:], relMagic)
	b[4] = h.Kind
	b[5] = byte(h.Epoch >> 16)
	b[6] = byte(h.Epoch >> 8)
	b[7] = byte(h.Epoch)
	binary.BigEndian.PutUint64(b[8:], h.Seq)
	binary.BigEndian.PutUint64(b[16:], h.Ack)
	binary.BigEndian.PutUint32(b[24:], h.CRC)
	return append(dst, b[:]...)
}

// DecodeRelHeader parses a reliability header from the front of b and
// returns it with the remaining payload bytes.
func DecodeRelHeader(b []byte) (RelHeader, []byte, error) {
	if len(b) < relHeaderLen {
		return RelHeader{}, b, fmt.Errorf("%w: %d bytes", ErrBadRelHeader, len(b))
	}
	if binary.BigEndian.Uint32(b[0:]) != relMagic {
		return RelHeader{}, b, fmt.Errorf("%w: bad magic", ErrBadRelHeader)
	}
	h := RelHeader{
		Kind:  b[4],
		Epoch: uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
		Seq:   binary.BigEndian.Uint64(b[8:]),
		Ack:   binary.BigEndian.Uint64(b[16:]),
		CRC:   binary.BigEndian.Uint32(b[24:]),
	}
	if h.Kind != relKindData && h.Kind != relKindAck {
		return RelHeader{}, b, fmt.Errorf("%w: kind %d", ErrBadRelHeader, h.Kind)
	}
	return h, b[relHeaderLen:], nil
}

// relCRC computes the checksum stored in a reliability header: CRC-32C
// over the canonical first 24 header bytes (kind, epoch, seq, ack) and
// the payload.
func relCRC(h RelHeader, payload []byte) uint32 {
	var b [relHeaderLen - 4]byte
	binary.BigEndian.PutUint32(b[0:], relMagic)
	b[4] = h.Kind
	b[5] = byte(h.Epoch >> 16)
	b[6] = byte(h.Epoch >> 8)
	b[7] = byte(h.Epoch)
	binary.BigEndian.PutUint64(b[8:], h.Seq)
	binary.BigEndian.PutUint64(b[16:], h.Ack)
	return crc32.Update(crc32.Checksum(b[:], castagnoli), castagnoli, payload)
}

// restampEpoch rewrites the epoch field of an already-encoded reliability
// header in place and refreshes the CRC. Retransmits use it so a frame
// buffered before an epoch bump carries the sender's *current* epoch: a
// fenced receiver drops the old stamp as a wire loss, and the restamped
// retransmit repairs it — only senders that never learn the new epoch
// (zombies) stay fenced out.
func restampEpoch(body []byte, epoch uint32) {
	if len(body) < relHeaderLen {
		return
	}
	h, payload, err := DecodeRelHeader(body)
	if err != nil || h.Epoch == epoch {
		return
	}
	h.Epoch = epoch
	body[5] = byte(epoch >> 16)
	body[6] = byte(epoch >> 8)
	body[7] = byte(epoch)
	binary.BigEndian.PutUint32(body[24:], relCRC(h, payload))
}

// ReliableConfig tunes the reliability layer. Zero values select the
// defaults noted on each field.
type ReliableConfig struct {
	// RTO is the initial retransmit timeout (default 20ms); it backs off
	// exponentially per attempt up to RTOMax (default 500ms).
	RTO    time.Duration
	RTOMax time.Duration
	// AckDelay bounds how long a received frame waits before a standalone
	// ack is emitted when no reverse traffic piggybacks one (default 2ms).
	AckDelay time.Duration
	// MaxRetransmits is the per-frame retransmit budget; when a frame has
	// been retransmitted this many times without an ack, the layer gives
	// up and fires the error handler (default 12).
	MaxRetransmits int
	// Window bounds the per-peer retransmit buffer in frames; senders
	// block until acks free space (default 512).
	Window int
	// SendFaults and RecvFaults are device chains interposed between the
	// reliability layer and the socket — the chaos harness injects drops,
	// duplicates, reordering, corruption, and partitions here, inside the
	// reliability envelope.
	SendFaults []SendDevice
	RecvFaults []RecvDevice
	// OnFail, if non-nil, is the budget-exhaustion backstop, installed at
	// construction (the replacement for the deprecated post-hoc
	// SetErrHandler). When the layer is owned by a ChainBuilder Stack, the
	// runtime's failure path is bound through Stack.Bind instead.
	OnFail func(error)
	// OnPeerFail, if non-nil, is consulted before OnFail when one peer
	// exhausts its retransmit budget. Returning true claims the failure as
	// handled — the layer forgets the peer (dropping its buffered frames)
	// and keeps serving the others — turning a single dead node into a
	// membership event instead of a run failure. Returning false falls
	// through to the terminal OnFail path.
	OnPeerFail func(node int, err error) bool
}

func (c *ReliableConfig) fill() {
	if c.RTO <= 0 {
		c.RTO = 20 * time.Millisecond
	}
	if c.RTOMax <= 0 {
		c.RTOMax = 500 * time.Millisecond
	}
	if c.AckDelay <= 0 {
		c.AckDelay = 2 * time.Millisecond
	}
	if c.MaxRetransmits <= 0 {
		c.MaxRetransmits = 12
	}
	if c.Window <= 0 {
		c.Window = 512
	}
}

// ReliableStats counts the layer's repair activity.
type ReliableStats struct {
	DataSent, Retransmits, AcksSent        int64
	Delivered, DupDropped, CrcDropped      int64
	HeldOutOfOrder, TransportErrs, BadHdrs int64
	// StaleEpochDropped counts frames fenced for carrying a membership
	// epoch older than this node's — the zombie traffic the epoch bump
	// exists to keep out.
	StaleEpochDropped int64
	// PeerFailures counts peers whose budget exhaustion was claimed by
	// OnPeerFail (and whose state was dropped) instead of failing the run.
	PeerFailures int64
}

// Reliable implements the core.Transport Send contract over a *TCP. Build
// it with NewReliable, which rewires the TCP's receive path and error
// handler through the layer.
type Reliable struct {
	tcp  *TCP
	up   RecvFunc
	down SendFunc
	cfg  ReliableConfig

	// errHandler is the budget-exhaustion backstop (the runtime's fail
	// hook); transport-level errors never reach it directly.
	errHandler atomic.Pointer[func(error)]

	// onPeerFail is the per-peer budget-exhaustion handler (membership's
	// death detector); see ReliableConfig.OnPeerFail.
	onPeerFail atomic.Pointer[func(node int, err error) bool]

	// epoch is this node's current membership epoch, stamped on every
	// data frame and ack; received frames with a lower epoch are fenced.
	epoch atomic.Uint32

	mu      sync.Mutex
	space   *sync.Cond // senders wait here for retransmit-window space
	peers   map[int]*relPeer
	stats   ReliableStats
	failErr error
	closed  bool

	// gone holds the receive-dedup floor (recvNext) of forgotten peers.
	// A drained node keeps retransmitting its last unacked frames until
	// the final ack reaches it; without the floor, fresh peer state would
	// deliver those retransmits a second time. Cleared by ResetPeer when
	// the node rejoins as a new incarnation.
	gone map[int]uint64

	done chan struct{}
	wg   sync.WaitGroup
}

type relPeer struct {
	node    int
	nextSeq uint64 // next sequence number to assign (first frame is 1)
	sendBuf []*relEntry

	// deliverMu serializes upward delivery for this peer: it is taken
	// before the layer's state lock (never the other way around), so the
	// in-order guarantee holds even while an old and a reconnected
	// connection briefly both deliver. Hence the upward callback must not
	// call Send synchronously while itself running under deliverMu — the
	// runtime's inject path only enqueues, so it never does.
	deliverMu sync.Mutex
	recvNext  uint64            // lowest sequence not yet delivered upward
	heldRecv  map[uint64]*Frame // out-of-order arrivals awaiting the gap
	ackDue    bool

	// Representative PEs for routing standalone acks, learned from
	// traffic (frames to the peer carry a local Src and remote Dst;
	// frames from it the reverse).
	selfPE, peerPE int32
	havePEs        bool
}

type relEntry struct {
	seq      uint64
	f        *Frame
	lastSent time.Time
	attempts int
}

// NewReliable interposes a reliability layer on t: frames handed to
// rel.Send are sequenced, buffered, and shipped through t (below any
// cfg.SendFaults); frames arriving off t's wire (through cfg.RecvFaults)
// are verified, deduplicated, reordered back into sequence, and delivered
// to deliver. Must be called before t establishes connections.
func NewReliable(t *TCP, deliver RecvFunc, cfg ReliableConfig) *Reliable {
	cfg.fill()
	rel := &Reliable{
		tcp:   t,
		up:    deliver,
		cfg:   cfg,
		peers: make(map[int]*relPeer),
		gone:  make(map[int]uint64),
		done:  make(chan struct{}),
	}
	rel.space = sync.NewCond(&rel.mu)
	if cfg.OnFail != nil {
		rel.errHandler.Store(&cfg.OnFail)
	}
	if cfg.OnPeerFail != nil {
		rel.onPeerFail.Store(&cfg.OnPeerFail)
	}
	rel.down = BuildSendChain(t.Send, cfg.SendFaults...)
	t.SetRecv(BuildRecvChain(rel.deliverWire, cfg.RecvFaults...))
	t.setErrHandler(rel.onTransportErr)
	rel.wg.Add(2)
	go rel.retransmitLoop()
	go rel.ackLoop()
	return rel
}

// SetErrHandler installs the budget-exhaustion handler.
//
// Deprecated: set ReliableConfig.OnFail at construction, or let
// core.NewRuntime bind its failure path through a ChainBuilder Stack.
// Retained for out-of-tree callers; no in-tree caller remains.
func (r *Reliable) SetErrHandler(h func(error)) { r.setErrHandler(h) }

// setErrHandler is the in-package installation path (Stack.Bind).
func (r *Reliable) setErrHandler(h func(error)) { r.errHandler.Store(&h) }

func (r *Reliable) errh() func(error) {
	if p := r.errHandler.Load(); p != nil {
		return *p
	}
	return nil
}

// SetOnPeerFail installs the per-peer budget-exhaustion handler after
// construction (the membership layer is typically built above an already-
// assembled stack). See ReliableConfig.OnPeerFail.
func (r *Reliable) SetOnPeerFail(fn func(node int, err error) bool) {
	r.onPeerFail.Store(&fn)
}

func (r *Reliable) peerFailHandler() func(node int, err error) bool {
	if p := r.onPeerFail.Load(); p != nil {
		return *p
	}
	return nil
}

// SetEpoch advances this node's membership epoch (masked to MaxEpoch).
// Every subsequent send — including retransmits of frames buffered under
// the old epoch, which are restamped — carries the new value; incoming
// frames stamped with an older epoch are dropped and counted. Epochs
// never regress: a lower value than the current one is ignored.
func (r *Reliable) SetEpoch(e uint32) {
	e &= MaxEpoch
	for {
		cur := r.epoch.Load()
		if e <= cur || r.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Epoch returns this node's current membership epoch.
func (r *Reliable) Epoch() uint32 { return r.epoch.Load() }

// ForgetPeer drops all reliability state for node: buffered unacked
// frames, held out-of-order receives, and sequence tracking. Call it when
// membership declares the peer dead or drained — the retransmit loop
// stops re-dialing it, and senders blocked on its window are released.
//
// The receive-dedup floor survives as a tombstone, and a final cumulative
// ack is flushed on the way out: a *drained* peer is still alive and
// retransmitting anything we have not acked (its results were a one-way
// flow, so the acks were delayed standalone ones that die with the peer
// state). The ack stops it; the tombstone keeps any retransmit already in
// flight from being delivered twice. Dead peers need neither — the epoch
// bump fences them — but both are harmless there.
func (r *Reliable) ForgetPeer(node int) {
	var ack *Frame
	r.mu.Lock()
	if p, ok := r.peers[node]; ok {
		p.sendBuf = nil
		delete(r.peers, node)
		r.gone[node] = p.recvNext
		if p.havePEs && p.recvNext > 1 {
			h := RelHeader{Kind: relKindAck, Epoch: r.epoch.Load(), Ack: p.recvNext - 1}
			h.CRC = relCRC(h, nil)
			ack = &Frame{
				Src: p.selfPE, Dst: p.peerPE, Class: ClassSystem, Flags: FlagReliable,
				Body: AppendRelHeader(make([]byte, 0, relHeaderLen), h),
			}
			r.stats.AcksSent++
		}
	}
	r.mu.Unlock()
	r.space.Broadcast()
	if ack != nil {
		_ = r.down(ack) // best effort; the tombstone covers a lost ack
	}
}

// ResetPeer clears the forgotten-peer dedup tombstone for node: a new
// incarnation (a drained node rejoining under the same number) starts its
// sequence space from 1 and must not be deduplicated against its
// predecessor's. Installed on the address-update path — a new incarnation
// always announces a new address.
func (r *Reliable) ResetPeer(node int) {
	r.mu.Lock()
	delete(r.gone, node)
	r.mu.Unlock()
}

// Stats returns a snapshot of the repair counters.
func (r *Reliable) Stats() ReliableStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Instrument registers the layer's repair counters on reg as collection-
// time reads of Stats() — the hot path keeps its single stats mutex and
// pays nothing extra. Reconnects are counted by the underlying TCP device
// (vmi_tcp_reconnects_total); this layer's counters cover what it
// repaired.
func (r *Reliable) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	stat := func(sel func(ReliableStats) int64) func() int64 {
		return func() int64 { return sel(r.Stats()) }
	}
	for _, m := range []struct {
		name string
		sel  func(ReliableStats) int64
	}{
		{"vmi_rel_data_sent_total", func(s ReliableStats) int64 { return s.DataSent }},
		{"vmi_rel_retransmits_total", func(s ReliableStats) int64 { return s.Retransmits }},
		{"vmi_rel_acks_sent_total", func(s ReliableStats) int64 { return s.AcksSent }},
		{"vmi_rel_delivered_total", func(s ReliableStats) int64 { return s.Delivered }},
		{"vmi_rel_dup_dropped_total", func(s ReliableStats) int64 { return s.DupDropped }},
		{"vmi_rel_crc_dropped_total", func(s ReliableStats) int64 { return s.CrcDropped }},
		{"vmi_rel_held_out_of_order_total", func(s ReliableStats) int64 { return s.HeldOutOfOrder }},
		{"vmi_rel_transport_errs_total", func(s ReliableStats) int64 { return s.TransportErrs }},
		{"vmi_rel_bad_headers_total", func(s ReliableStats) int64 { return s.BadHdrs }},
		{"vmi_rel_stale_epoch_dropped_total", func(s ReliableStats) int64 { return s.StaleEpochDropped }},
		{"vmi_rel_peer_failures_total", func(s ReliableStats) int64 { return s.PeerFailures }},
	} {
		reg.CounterFunc(m.name, stat(m.sel), labels...)
	}
}

// Outstanding reports unacked frames buffered for node.
func (r *Reliable) Outstanding(node int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.peers[node]; ok {
		return len(p.sendBuf)
	}
	return 0
}

func (r *Reliable) peer(node int) *relPeer {
	p, ok := r.peers[node]
	if !ok {
		p = &relPeer{node: node, nextSeq: 1, recvNext: 1, heldRecv: make(map[uint64]*Frame)}
		// Resume the dedup floor of a forgotten incarnation: late
		// retransmits from a drained peer must re-ack, not re-deliver.
		if floor, gone := r.gone[node]; gone && floor > p.recvNext {
			p.recvNext = floor
		}
		r.peers[node] = p
	}
	return p
}

// fail records the terminal error and fires the backstop handler once.
func (r *Reliable) fail(err error) {
	r.mu.Lock()
	already := r.failErr != nil
	if !already {
		r.failErr = err
	}
	r.mu.Unlock()
	r.space.Broadcast()
	if !already {
		if h := r.errh(); h != nil {
			h(err)
		}
	}
}

// onTransportErr absorbs asynchronous TCP errors (dead peers, dropped
// connections, reader failures). The data they may have lost is still in
// the retransmit buffer; the next retransmit re-dials.
func (r *Reliable) onTransportErr(err error) {
	r.mu.Lock()
	r.stats.TransportErrs++
	r.mu.Unlock()
}

// Send implements the transport contract: sequence, buffer, and ship one
// frame. The frame and its body are copied before Send returns, so the
// caller may recycle them. Send blocks while the peer's retransmit window
// is full and returns an error only once the layer has failed terminally
// or closed.
func (r *Reliable) Send(f *Frame) error {
	node := r.tcp.route(f.Dst)
	if node == r.tcp.self {
		return r.up(f)
	}
	r.mu.Lock()
	p := r.peer(node)
	for len(p.sendBuf) >= r.cfg.Window && r.failErr == nil && !r.closed {
		r.space.Wait()
	}
	if r.failErr != nil {
		err := r.failErr
		r.mu.Unlock()
		return err
	}
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("vmi: reliable layer closed")
	}
	p.selfPE, p.peerPE, p.havePEs = f.Src, f.Dst, true
	seq := p.nextSeq
	p.nextSeq++
	h := RelHeader{Kind: relKindData, Epoch: r.epoch.Load(), Seq: seq, Ack: p.recvNext - 1}
	h.CRC = relCRC(h, f.Body)
	body := AppendRelHeader(make([]byte, 0, relHeaderLen+len(f.Body)), h)
	body = append(body, f.Body...)
	wf := &Frame{
		Src: f.Src, Dst: f.Dst, Prio: f.Prio, Class: f.Class, Seq: f.Seq,
		Flags: f.Flags | FlagReliable,
		Body:  body,
	}
	p.sendBuf = append(p.sendBuf, &relEntry{seq: seq, f: wf, lastSent: time.Now()})
	p.ackDue = false // this frame piggybacks the current cumulative ack
	r.stats.DataSent++
	r.mu.Unlock()

	// Transport errors here (dial failure against a partitioned peer,
	// enqueue into a conn that just died) are repairable: the entry stays
	// buffered and the retransmit loop retries until the budget runs out.
	if err := r.down(wf); err != nil {
		r.mu.Lock()
		r.stats.TransportErrs++
		r.mu.Unlock()
	}
	return nil
}

// deliverWire is the terminal of the wire-side receive chain: verify,
// ack-process, deduplicate, reorder, and deliver.
func (r *Reliable) deliverWire(f *Frame) error {
	if f.Flags&FlagReliable == 0 {
		return r.up(f) // pre-reliability traffic passes through
	}
	h, payload, err := DecodeRelHeader(f.Body)
	if err != nil {
		r.mu.Lock()
		r.stats.BadHdrs++
		r.mu.Unlock()
		return nil // unparseable: treat as lost; retransmit repairs
	}
	if relCRC(h, payload) != h.CRC {
		r.mu.Lock()
		r.stats.CrcDropped++
		r.mu.Unlock()
		return nil // corrupt in flight: drop, retransmit repairs
	}
	if h.Epoch < r.epoch.Load() {
		// Fenced: the sender is behind this node's membership epoch. A
		// live survivor that simply hasn't heard of the bump yet will
		// restamp and retransmit; a zombie never learns it and stays out.
		// The stale frame's ack field is ignored too — only current-epoch
		// traffic may free retransmit entries.
		r.mu.Lock()
		r.stats.StaleEpochDropped++
		r.mu.Unlock()
		return nil
	}
	node := r.tcp.route(f.Src)
	r.mu.Lock()
	p := r.peer(node)
	r.mu.Unlock()

	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	r.mu.Lock()
	p.peerPE, p.selfPE, p.havePEs = f.Src, f.Dst, true

	// Cumulative ack: release everything at or below h.Ack.
	if n := ackPrefix(p.sendBuf, h.Ack); n > 0 {
		p.sendBuf = append(p.sendBuf[:0], p.sendBuf[n:]...)
		r.space.Broadcast()
	}
	if h.Kind == relKindAck {
		r.mu.Unlock()
		return nil
	}

	switch {
	case h.Seq < p.recvNext: // duplicate of something already delivered
		r.stats.DupDropped++
		p.ackDue = true // re-ack so the sender stops retransmitting
		r.mu.Unlock()
		return nil
	case h.Seq > p.recvNext: // gap: hold until the missing frames arrive
		if _, dup := p.heldRecv[h.Seq]; !dup {
			held := f.Clone() // wire body is only valid during this call
			held.Body = held.Body[relHeaderLen:]
			held.Flags &^= FlagReliable
			p.heldRecv[h.Seq] = held
			r.stats.HeldOutOfOrder++
		} else {
			r.stats.DupDropped++
		}
		p.ackDue = true
		r.mu.Unlock()
		return nil
	}

	// In sequence: deliver, then drain any directly following held frames.
	p.recvNext++
	var drain []*Frame
	for {
		g, ok := p.heldRecv[p.recvNext]
		if !ok {
			break
		}
		delete(p.heldRecv, p.recvNext)
		drain = append(drain, g)
		p.recvNext++
	}
	p.ackDue = true
	r.stats.Delivered += int64(1 + len(drain))
	r.mu.Unlock()

	f.Body = payload
	f.Flags &^= FlagReliable
	if err := r.up(f); err != nil {
		return err
	}
	for _, g := range drain {
		if err := r.up(g); err != nil {
			return err
		}
	}
	return nil
}

// ackPrefix counts leading entries of buf with seq <= ack.
func ackPrefix(buf []*relEntry, ack uint64) int {
	n := 0
	for n < len(buf) && buf[n].seq <= ack {
		n++
	}
	return n
}

// rto is the timeout before retransmit attempt n+1.
func (r *Reliable) rto(attempts int) time.Duration {
	d := r.cfg.RTO
	for i := 0; i < attempts && d < r.cfg.RTOMax; i++ {
		d *= 2
	}
	if d > r.cfg.RTOMax {
		d = r.cfg.RTOMax
	}
	return d
}

// retransmitLoop rescans the send buffers and re-ships timed-out entries.
// Re-dialing a dead connection happens inside TCP.Send, so a retransmit
// after a connection drop is also the transparent reconnect.
func (r *Reliable) retransmitLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.RTO / 2)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		var resend []*relEntry
		r.mu.Lock()
		if r.failErr != nil {
			r.mu.Unlock()
			return
		}
		var exhausted *relEntry
		exhaustedNode := -1
		for _, p := range r.peers {
			for _, e := range p.sendBuf {
				if now.Sub(e.lastSent) < r.rto(e.attempts) {
					continue
				}
				if e.attempts >= r.cfg.MaxRetransmits {
					exhausted = e
					exhaustedNode = p.node
					break
				}
				e.attempts++
				e.lastSent = now
				resend = append(resend, e)
			}
			if exhausted != nil {
				break
			}
		}
		if resend != nil {
			r.stats.Retransmits += int64(len(resend))
		}
		r.mu.Unlock()
		if exhausted != nil {
			err := fmt.Errorf("vmi: reliable: frame %v seq %d to node %d unacked after %d retransmits",
				exhausted.f, exhausted.seq, exhaustedNode, r.cfg.MaxRetransmits)
			if h := r.peerFailHandler(); h != nil && h(exhaustedNode, err) {
				// Membership claimed the failure: the peer is dead to us.
				// Drop its state and keep serving the surviving peers.
				r.ForgetPeer(exhaustedNode)
				r.mu.Lock()
				r.stats.PeerFailures++
				r.mu.Unlock()
				continue
			}
			r.fail(err)
			return
		}
		// Restamp retransmits with the current epoch: frames buffered
		// before a bump would otherwise be fenced by every receiver.
		ep := r.epoch.Load()
		for _, e := range resend {
			restampEpoch(e.f.Body, ep)
			if err := r.down(e.f); err != nil {
				r.mu.Lock()
				r.stats.TransportErrs++
				r.mu.Unlock()
			}
		}
	}
}

// ackLoop emits standalone cumulative acks for peers whose received
// frames have not been acked by reverse traffic within AckDelay.
func (r *Reliable) ackLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.AckDelay)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
		}
		var acks []*Frame
		r.mu.Lock()
		if r.failErr != nil {
			r.mu.Unlock()
			return
		}
		for _, p := range r.peers {
			if !p.ackDue || !p.havePEs {
				continue
			}
			p.ackDue = false
			h := RelHeader{Kind: relKindAck, Epoch: r.epoch.Load(), Ack: p.recvNext - 1}
			h.CRC = relCRC(h, nil)
			acks = append(acks, &Frame{
				Src: p.selfPE, Dst: p.peerPE, Class: ClassSystem, Flags: FlagReliable,
				Body: AppendRelHeader(make([]byte, 0, relHeaderLen), h),
			})
		}
		r.stats.AcksSent += int64(len(acks))
		r.mu.Unlock()
		for _, f := range acks {
			_ = r.down(f) // ack loss is repaired by retransmit-then-re-ack
		}
	}
}

// Close stops the retransmit and ack goroutines. It does not close the
// underlying TCP; the owner does that separately.
func (r *Reliable) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
	r.space.Broadcast()
	r.wg.Wait()
}
