package vmi

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Transform devices implement the VMI capability the paper highlights:
// "because modules can intercept and manipulate message data as it is
// passed from module to module, capabilities such as encrypting or
// compressing the data are possible." Each transform is a matched
// SendDevice/RecvDevice pair operating on Frame.Body. Frames without a
// serialized body (pure in-process frames) pass through untouched, since
// there are no bytes to transform.

// ErrChecksum is returned by ChecksumDevice.Recv on CRC mismatch.
var ErrChecksum = errors.New("vmi: frame checksum mismatch")

// CompressDevice DEFLATE-compresses frame bodies above a size threshold on
// send and transparently decompresses on receive. Compression is skipped
// (and the flag left clear) when it would not shrink the body.
type CompressDevice struct {
	// MinSize is the smallest body worth compressing; bodies below it pass
	// through. Zero means 128 bytes.
	MinSize int
	// Level is the flate compression level; zero means flate.BestSpeed.
	Level int
}

// Name implements SendDevice and RecvDevice.
func (d *CompressDevice) Name() string { return "compress" }

func (d *CompressDevice) minSize() int {
	if d.MinSize > 0 {
		return d.MinSize
	}
	return 128
}

func (d *CompressDevice) level() int {
	if d.Level != 0 {
		return d.Level
	}
	return flate.BestSpeed
}

// Send implements SendDevice.
func (d *CompressDevice) Send(f *Frame, next SendFunc) error {
	if f.Body == nil || len(f.Body) < d.minSize() || f.Flags&FlagCompressed != 0 {
		return next(f)
	}
	var buf bytes.Buffer
	buf.Grow(len(f.Body)/2 + 16)
	// Record the original length so receive can size its buffer exactly.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(f.Body)))
	buf.Write(hdr[:])
	w, err := flate.NewWriter(&buf, d.level())
	if err != nil {
		return fmt.Errorf("vmi: compress init: %w", err)
	}
	if _, err := w.Write(f.Body); err != nil {
		return fmt.Errorf("vmi: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("vmi: compress close: %w", err)
	}
	if buf.Len() >= len(f.Body) {
		return next(f) // incompressible; send as-is
	}
	f.Body = append(f.Body[:0:0], buf.Bytes()...)
	f.Flags |= FlagCompressed
	return next(f)
}

// Recv implements RecvDevice.
func (d *CompressDevice) Recv(f *Frame, next RecvFunc) error {
	if f.Flags&FlagCompressed == 0 || f.Body == nil {
		return next(f)
	}
	if len(f.Body) < 4 {
		return errors.New("vmi: compressed frame too short")
	}
	orig := binary.BigEndian.Uint32(f.Body[:4])
	if orig > maxFrameBody {
		return ErrFrameTooLarge
	}
	r := flate.NewReader(bytes.NewReader(f.Body[4:]))
	out := make([]byte, 0, orig)
	buf := bytes.NewBuffer(out)
	if _, err := io.Copy(buf, r); err != nil {
		return fmt.Errorf("vmi: decompress: %w", err)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("vmi: decompress close: %w", err)
	}
	if uint32(buf.Len()) != orig {
		return fmt.Errorf("vmi: decompressed length %d, want %d", buf.Len(), orig)
	}
	f.Body = buf.Bytes()
	f.Flags &^= FlagCompressed
	return next(f)
}

// ChecksumDevice appends a CRC-32 (Castagnoli) of the body on send and
// verifies and strips it on receive.
type ChecksumDevice struct{}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Name implements SendDevice and RecvDevice.
func (ChecksumDevice) Name() string { return "crc32c" }

// Send implements SendDevice.
func (ChecksumDevice) Send(f *Frame, next SendFunc) error {
	if f.Body == nil || f.Flags&FlagChecksummed != 0 {
		return next(f)
	}
	sum := crc32.Checksum(f.Body, castagnoli)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sum)
	f.Body = append(f.Body, tail[:]...)
	f.Flags |= FlagChecksummed
	return next(f)
}

// Recv implements RecvDevice.
func (ChecksumDevice) Recv(f *Frame, next RecvFunc) error {
	if f.Flags&FlagChecksummed == 0 || f.Body == nil {
		return next(f)
	}
	if len(f.Body) < 4 {
		return ErrChecksum
	}
	n := len(f.Body) - 4
	want := binary.BigEndian.Uint32(f.Body[n:])
	if crc32.Checksum(f.Body[:n], castagnoli) != want {
		return ErrChecksum
	}
	f.Body = f.Body[:n]
	f.Flags &^= FlagChecksummed
	return next(f)
}

// CipherDevice encrypts frame bodies with AES-CTR. The counter IV is
// derived from the frame's (Src, Seq) pair, which is unique per frame, so
// the keystream is never reused under one key within a run.
type CipherDevice struct {
	block cipher.Block
}

// NewCipherDevice builds a cipher device from a 16-, 24-, or 32-byte key.
func NewCipherDevice(key []byte) (*CipherDevice, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("vmi: cipher: %w", err)
	}
	return &CipherDevice{block: b}, nil
}

// Name implements SendDevice and RecvDevice.
func (d *CipherDevice) Name() string { return "aes-ctr" }

func (d *CipherDevice) stream(f *Frame) cipher.Stream {
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint32(iv[0:], uint32(f.Src))
	binary.BigEndian.PutUint64(iv[4:], f.Seq)
	return cipher.NewCTR(d.block, iv[:])
}

// Send implements SendDevice.
func (d *CipherDevice) Send(f *Frame, next SendFunc) error {
	if f.Body == nil || f.Flags&FlagEncrypted != 0 {
		return next(f)
	}
	d.stream(f).XORKeyStream(f.Body, f.Body)
	f.Flags |= FlagEncrypted
	return next(f)
}

// Recv implements RecvDevice.
func (d *CipherDevice) Recv(f *Frame, next RecvFunc) error {
	if f.Flags&FlagEncrypted == 0 || f.Body == nil {
		return next(f)
	}
	d.stream(f).XORKeyStream(f.Body, f.Body)
	f.Flags &^= FlagEncrypted
	return next(f)
}
