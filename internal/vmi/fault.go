package vmi

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridmdo/internal/metrics"
)

// Fault-injection devices: the chaos-side counterpart of the delay device.
// The paper's method interposes a device into a send chain to emulate a
// wide-area link's latency; real grid links also drop, duplicate, reorder,
// and corrupt frames. A FaultDevice injects exactly those faults at seeded,
// per-(src,dst) configurable rates, and a PartitionDevice severs and heals
// whole link groups mid-run. Both compose into BuildSendChain /
// BuildRecvChain next to DelayDevice, and both are deterministic for a
// given seed: each (src,dst) flow draws from its own seeded RNG stream in a
// fixed per-frame order, so the fault sequence a flow experiences is a pure
// function of (seed, src, dst, frame index) no matter how flows interleave.

// FaultPlan sets the fault rates for one (src,dst) flow. All probabilities
// are in [0,1]; a zero plan passes every frame through untouched.
type FaultPlan struct {
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Reorder is the probability a frame is held back and released only
	// after ReorderSpan later frames of its flow have passed it.
	Reorder float64
	// ReorderSpan is how many later frames overtake a held frame before it
	// is released; zero means 2.
	ReorderSpan int
	// Corrupt is the probability one body byte is bit-flipped.
	Corrupt float64
	// JitterMax, when positive, adds a uniform random delay in
	// [0, JitterMax) to frames that are not dropped, held, or duplicated.
	JitterMax time.Duration
}

func (p FaultPlan) span() int {
	if p.ReorderSpan > 0 {
		return p.ReorderSpan
	}
	return 2
}

// FaultKind labels one injected fault in the event log.
type FaultKind uint8

// Fault kinds recorded by FaultDevice.
const (
	FaultDrop FaultKind = iota
	FaultDuplicate
	FaultReorder
	FaultCorrupt
	FaultJitter
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	case FaultCorrupt:
		return "corrupt"
	case FaultJitter:
		return "jitter"
	}
	return "fault(?)"
}

// FaultEvent is one injected fault: which flow, which frame of that flow,
// and what happened to it. Chaos tests compare event sequences across runs
// to prove seed-determinism.
type FaultEvent struct {
	Src, Dst int32
	Index    uint64 // per-flow frame index, 0-based
	Kind     FaultKind
}

// FaultStats counts frames seen and faults injected.
type FaultStats struct {
	Frames, Dropped, Duplicated, Reordered, Corrupted, Jittered int64
}

// FaultDevice injects seeded, per-flow random faults into a device chain.
// It implements both SendDevice and RecvDevice so it can model a lossy
// link from either end. Held and duplicated frames are cloned, so the
// device never retains a caller's (possibly pooled) frame or body beyond
// the call. Close releases any frames still held for reordering.
type FaultDevice struct {
	seed    int64
	planFor func(src, dst int32) FaultPlan

	mu     sync.Mutex
	flows  map[int64]*faultFlow
	stats  FaultStats
	log    []FaultEvent
	logOn  bool
	closed bool

	dly *DelayDevice // carries jittered frames
}

type faultFlow struct {
	src, dst int32
	rng      *rand.Rand
	idx      uint64
	held     []*heldFault
}

type heldFault struct {
	f         *Frame
	next      func(*Frame) error
	remaining int
}

// NewFaultDevice builds a device applying one plan to every flow.
func NewFaultDevice(seed int64, plan FaultPlan) *FaultDevice {
	return NewFaultDeviceFunc(seed, func(int32, int32) FaultPlan { return plan })
}

// NewFaultDeviceFunc builds a device whose plan is chosen per (src,dst) —
// e.g. faults only on flows that cross the WAN boundary.
func NewFaultDeviceFunc(seed int64, planFor func(src, dst int32) FaultPlan) *FaultDevice {
	return &FaultDevice{
		seed:    seed,
		planFor: planFor,
		flows:   make(map[int64]*faultFlow),
		dly:     NewDelayDevice(func(int32, int32) time.Duration { return 0 }),
	}
}

// RecordLog turns on the fault event log (off by default; unbounded).
func (d *FaultDevice) RecordLog() {
	d.mu.Lock()
	d.logOn = true
	d.mu.Unlock()
}

// Log returns a copy of the recorded fault events.
func (d *FaultDevice) Log() []FaultEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]FaultEvent(nil), d.log...)
}

// Stats returns a snapshot of the fault counters.
func (d *FaultDevice) Stats() FaultStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Instrument registers the device's injection counters on reg, one series
// per fault kind, as collection-time reads of Stats().
func (d *FaultDevice) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	stat := func(sel func(FaultStats) int64) func() int64 {
		return func() int64 { return sel(d.Stats()) }
	}
	reg.CounterFunc("vmi_fault_frames_total", stat(func(s FaultStats) int64 { return s.Frames }), labels...)
	for _, m := range []struct {
		kind string
		sel  func(FaultStats) int64
	}{
		{"drop", func(s FaultStats) int64 { return s.Dropped }},
		{"duplicate", func(s FaultStats) int64 { return s.Duplicated }},
		{"reorder", func(s FaultStats) int64 { return s.Reordered }},
		{"corrupt", func(s FaultStats) int64 { return s.Corrupted }},
		{"jitter", func(s FaultStats) int64 { return s.Jittered }},
	} {
		kl := append(append([]metrics.Label(nil), labels...), metrics.L("kind", m.kind))
		reg.CounterFunc("vmi_fault_injected_total", stat(m.sel), kl...)
	}
}

// Name implements SendDevice and RecvDevice.
func (d *FaultDevice) Name() string { return "fault" }

// Send implements SendDevice.
func (d *FaultDevice) Send(f *Frame, next SendFunc) error {
	return d.apply(f, func(g *Frame) error { return next(g) })
}

// Recv implements RecvDevice.
func (d *FaultDevice) Recv(f *Frame, next RecvFunc) error {
	return d.apply(f, func(g *Frame) error { return next(g) })
}

// flowKey packs a (src,dst) pair; mixing it into the seed gives each flow
// an independent deterministic RNG stream.
func flowKey(src, dst int32) int64 { return int64(src)<<32 | int64(uint32(dst)) }

func (d *FaultDevice) flow(src, dst int32) *faultFlow {
	k := flowKey(src, dst)
	fl, ok := d.flows[k]
	if !ok {
		fl = &faultFlow{
			src: src, dst: dst,
			// Golden-ratio mix so nearby pair keys land on distant streams.
			rng: rand.New(rand.NewSource(d.seed ^ k*-0x61C8864680B583EB)),
		}
		d.flows[k] = fl
	}
	return fl
}

func (d *FaultDevice) record(fl *faultFlow, idx uint64, kind FaultKind) {
	if d.logOn {
		d.log = append(d.log, FaultEvent{Src: fl.src, Dst: fl.dst, Index: idx, Kind: kind})
	}
}

// apply decides this frame's faults and advances the flow's reorder holds.
// The decision draws happen in a fixed order and count per frame, so the
// per-flow decision sequence depends only on the seed and the frame index.
func (d *FaultDevice) apply(f *Frame, next func(*Frame) error) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return next(f)
	}
	fl := d.flow(f.Src, f.Dst)
	idx := fl.idx
	fl.idx++
	plan := d.planFor(f.Src, f.Dst)

	// Fixed draw order: drop, duplicate, reorder, corrupt — always all
	// four, so later decisions don't shift when earlier rates change the
	// outcome for this frame.
	uDrop, uDup, uReorder, uCorrupt := fl.rng.Float64(), fl.rng.Float64(), fl.rng.Float64(), fl.rng.Float64()
	drop := uDrop < plan.Drop
	dup := !drop && uDup < plan.Duplicate
	reorder := !drop && !dup && uReorder < plan.Reorder
	corrupt := !drop && uCorrupt < plan.Corrupt && len(f.Body) > 0
	var corruptPos int
	var corruptBit uint
	if corrupt {
		corruptPos = fl.rng.Intn(len(f.Body))
		corruptBit = uint(fl.rng.Intn(8))
	}
	var jitter time.Duration
	if plan.JitterMax > 0 {
		jitter = time.Duration(fl.rng.Int63n(int64(plan.JitterMax)))
		if drop || dup || reorder {
			jitter = 0
		}
	}

	d.stats.Frames++
	switch {
	case drop:
		d.stats.Dropped++
		d.record(fl, idx, FaultDrop)
	case dup:
		d.stats.Duplicated++
		d.record(fl, idx, FaultDuplicate)
	case reorder:
		d.stats.Reordered++
		d.record(fl, idx, FaultReorder)
	}
	if corrupt {
		d.stats.Corrupted++
		d.record(fl, idx, FaultCorrupt)
	}
	if jitter > 0 {
		d.stats.Jittered++
		d.record(fl, idx, FaultJitter)
	}

	// Corruption happens on a clone: callers above (notably the reliability
	// layer) retransmit the very frame they passed down, so mutating the
	// caller's body in place would make the corruption permanent instead of
	// a one-shot wire fault. Cloning before the holds below also means held
	// and duplicated copies carry the corruption.
	out := f
	if corrupt {
		out = f.Clone()
		out.Body[corruptPos] ^= 1 << corruptBit
	}

	// A new frame on the flow lets every held frame advance one slot.
	var release []*heldFault
	if !drop {
		keep := fl.held[:0]
		for _, h := range fl.held {
			h.remaining--
			if h.remaining <= 0 {
				release = append(release, h)
			} else {
				keep = append(keep, h)
			}
		}
		fl.held = keep
	}
	if reorder {
		fl.held = append(fl.held, &heldFault{f: out.Clone(), next: next, remaining: plan.span()})
	}
	d.mu.Unlock()

	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if !drop && !reorder {
		if jitter > 0 {
			// The caller may recycle the frame on return; the delay device
			// holds it past the call, so it gets its own copy.
			fail(d.dly.Hold(out.Clone(), SendFunc(next), jitter))
		} else {
			fail(next(out))
			if dup {
				fail(next(out.Clone()))
			}
		}
	}
	for _, h := range release {
		fail(h.next(h.f))
	}
	return firstErr
}

// HeldFrames reports frames currently held back for reordering.
func (d *FaultDevice) HeldFrames() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, fl := range d.flows {
		n += len(fl.held)
	}
	return n
}

// Close releases every frame still held for reordering (in flow order,
// then hold order) and stops the jitter carrier. It is idempotent; frames
// arriving after Close pass straight through.
func (d *FaultDevice) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	keys := make([]int64, 0, len(d.flows))
	for k := range d.flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var release []*heldFault
	for _, k := range keys {
		fl := d.flows[k]
		release = append(release, fl.held...)
		fl.held = nil
	}
	d.mu.Unlock()
	for _, h := range release {
		_ = h.next(h.f)
	}
	d.dly.Close()
}

// PartitionDevice models a network partition: while severed, every frame
// on an affected flow is silently dropped; after Heal, traffic flows
// again. With the reliability layer above it, a healed partition's lost
// frames are retransmitted, so runs survive transient partitions. It
// implements both SendDevice and RecvDevice.
type PartitionDevice struct {
	affects func(src, dst int32) bool

	severed atomic.Bool
	dropped atomic.Int64
}

// NewPartitionDevice builds a partition over the flows affects reports
// true for; nil means every flow (a full partition). The device starts
// healed.
func NewPartitionDevice(affects func(src, dst int32) bool) *PartitionDevice {
	if affects == nil {
		affects = func(int32, int32) bool { return true }
	}
	return &PartitionDevice{affects: affects}
}

// Sever cuts the affected links.
func (p *PartitionDevice) Sever() { p.severed.Store(true) }

// Heal restores the affected links.
func (p *PartitionDevice) Heal() { p.severed.Store(false) }

// Severed reports whether the partition is currently in force.
func (p *PartitionDevice) Severed() bool { return p.severed.Load() }

// Dropped reports how many frames the partition has swallowed.
func (p *PartitionDevice) Dropped() int64 { return p.dropped.Load() }

// Instrument registers the partition's counters on reg.
func (p *PartitionDevice) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	reg.CounterFunc("vmi_partition_dropped_total", p.Dropped, labels...)
	reg.GaugeFunc("vmi_partition_severed", func() int64 {
		if p.Severed() {
			return 1
		}
		return 0
	}, labels...)
}

// Name implements SendDevice and RecvDevice.
func (p *PartitionDevice) Name() string { return "partition" }

// Send implements SendDevice.
func (p *PartitionDevice) Send(f *Frame, next SendFunc) error {
	if p.severed.Load() && p.affects(f.Src, f.Dst) {
		p.dropped.Add(1)
		return nil
	}
	return next(f)
}

// Recv implements RecvDevice.
func (p *PartitionDevice) Recv(f *Frame, next RecvFunc) error {
	if p.severed.Load() && p.affects(f.Src, f.Dst) {
		p.dropped.Add(1)
		return nil
	}
	return next(f)
}
