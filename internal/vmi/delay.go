package vmi

import (
	"container/heap"
	"sync"
	"time"

	"gridmdo/internal/metrics"
)

// DelayDevice reproduces the paper's key experimental instrument: a device
// interposed in a send chain that holds each frame for a configured,
// per-(src,dst)-pair latency before passing it to the next device. With a
// subset of PEs "affiliated" to the fast path (latency zero) and the rest
// behind a delay, a single physical machine behaves like two clusters
// joined by a wide-area link.
//
// Frames with equal due times are released in send order (Seq tie-break),
// so the device preserves point-to-point FIFO for constant latencies.
type DelayDevice struct {
	latencyFor func(src, dst int32) time.Duration

	mu      sync.Mutex
	pq      delayHeap
	hw      int    // occupancy high-water mark
	tick    uint64 // insertion order tie-break
	wake    chan struct{}
	done    chan struct{}
	stopped bool
	wg      sync.WaitGroup

	// sleep is swappable for tests; defaults to a timer-based wait.
	now func() time.Time
}

type delayedFrame struct {
	due  time.Time
	tick uint64
	f    *Frame
	next SendFunc
}

type delayHeap []delayedFrame

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].tick < h[j].tick
}
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(delayedFrame)) }
func (h *delayHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h delayHeap) peek() delayedFrame { return h[0] }

// NewDelayDevice builds a delay device whose per-frame latency is computed
// by latencyFor(src, dst). A zero latency passes the frame through
// synchronously with no goroutine hand-off, so intra-cluster traffic pays
// nothing for the instrumentation.
func NewDelayDevice(latencyFor func(src, dst int32) time.Duration) *DelayDevice {
	d := &DelayDevice{
		latencyFor: latencyFor,
		wake:       make(chan struct{}, 1),
		done:       make(chan struct{}),
		now:        time.Now,
	}
	d.wg.Add(1)
	go d.loop()
	return d
}

// Name implements SendDevice.
func (d *DelayDevice) Name() string { return "delay" }

// Send implements SendDevice. The frame is either forwarded immediately
// (zero latency) or scheduled for release after the configured delay.
func (d *DelayDevice) Send(f *Frame, next SendFunc) error {
	return d.Hold(f, next, d.latencyFor(f.Src, f.Dst))
}

// Hold schedules a frame for release after an explicit delay, bypassing
// the device's latency function. Devices that compute per-frame delays
// from their own state (e.g. PacerDevice) compose on top of this.
func (d *DelayDevice) Hold(f *Frame, next SendFunc, delay time.Duration) error {
	if delay <= 0 {
		return next(f)
	}
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		// Deliver synchronously during shutdown rather than dropping.
		return next(f)
	}
	d.tick++
	heap.Push(&d.pq, delayedFrame{due: d.now().Add(delay), tick: d.tick, f: f, next: next})
	if len(d.pq) > d.hw {
		d.hw = len(d.pq)
	}
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
	return nil
}

// Pending reports the number of frames currently held by the device.
func (d *DelayDevice) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pq)
}

// HighWater reports the peak number of frames held simultaneously — the
// occupancy of the modeled WAN link at its most congested.
func (d *DelayDevice) HighWater() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hw
}

// Instrument registers the device's occupancy gauges on reg.
func (d *DelayDevice) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("vmi_delay_occupancy", func() int64 { return int64(d.Pending()) }, labels...)
	reg.GaugeFunc("vmi_delay_occupancy_high_water", func() int64 { return int64(d.HighWater()) }, labels...)
}

// Close releases all still-held frames immediately (preserving order) and
// stops the timer goroutine. It is idempotent.
func (d *DelayDevice) Close() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	var drained []delayedFrame
	for d.pq.Len() > 0 {
		drained = append(drained, heap.Pop(&d.pq).(delayedFrame))
	}
	d.mu.Unlock()
	close(d.done)
	d.wg.Wait()
	for _, df := range drained {
		_ = df.next(df.f)
	}
}

func (d *DelayDevice) loop() {
	defer d.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		d.mu.Lock()
		var wait time.Duration = -1
		var ready []delayedFrame
		for d.pq.Len() > 0 {
			head := d.pq.peek()
			untl := head.due.Sub(d.now())
			if untl > 0 {
				wait = untl
				break
			}
			ready = append(ready, heap.Pop(&d.pq).(delayedFrame))
		}
		d.mu.Unlock()

		for _, df := range ready {
			_ = df.next(df.f)
		}
		if len(ready) > 0 {
			continue // re-examine the heap before sleeping
		}

		if wait < 0 {
			select {
			case <-d.wake:
			case <-d.done:
				return
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-d.wake:
		case <-d.done:
			return
		}
	}
}
