package vmi

import (
	"sync"
	"testing"
	"time"
)

// TestDelayZeroLatencyFastPath: zero-latency frames are forwarded
// synchronously on the caller's goroutine with nothing queued.
func TestDelayZeroLatencyFastPath(t *testing.T) {
	d := NewDelayDevice(func(src, dst int32) time.Duration { return 0 })
	defer d.Close()
	delivered := false
	chain := BuildSendChain(func(f *Frame) error { delivered = true; return nil }, d)
	if err := chain(&Frame{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("zero-latency frame was not delivered synchronously")
	}
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d after synchronous delivery", d.Pending())
	}
}

// TestDelayCloseDrainsQueuedFrames: Close with frames still held releases
// every one of them, in due order, even while senders race the shutdown.
func TestDelayCloseDrainsQueuedFrames(t *testing.T) {
	d := NewDelayDevice(func(src, dst int32) time.Duration { return time.Hour })
	var mu sync.Mutex
	var delivered int
	sink := func(f *Frame) error {
		mu.Lock()
		delivered++
		mu.Unlock()
		return nil
	}
	chain := BuildSendChain(sink, d)

	const senders, perSender = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := chain(&Frame{Src: int32(s), Dst: 9, Seq: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if d.Pending() != senders*perSender {
		t.Fatalf("Pending = %d, want %d", d.Pending(), senders*perSender)
	}
	d.Close()
	mu.Lock()
	defer mu.Unlock()
	if delivered != senders*perSender {
		t.Errorf("Close delivered %d frames, want %d", delivered, senders*perSender)
	}
}

// TestDelayCloseRaceWithSenders: senders still running while Close happens
// lose nothing — every frame is delivered either by the timer loop, the
// Close drain, or the post-Close synchronous path.
func TestDelayCloseRaceWithSenders(t *testing.T) {
	d := NewDelayDevice(func(src, dst int32) time.Duration { return time.Millisecond })
	var delivered sync.Map
	sink := func(f *Frame) error {
		delivered.Store([2]int64{int64(f.Src), int64(f.Seq)}, true)
		return nil
	}
	chain := BuildSendChain(sink, d)

	const senders, perSender = 4, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := chain(&Frame{Src: int32(s), Dst: 9, Seq: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	// Close in the middle of the send storm.
	time.Sleep(500 * time.Microsecond)
	d.Close()
	wg.Wait()
	count := 0
	delivered.Range(func(any, any) bool { count++; return true })
	if count != senders*perSender {
		t.Errorf("delivered %d distinct frames, want %d", count, senders*perSender)
	}
}

// fixedClock is a swappable time source for the delay device's unexported
// now hook.
type fixedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fixedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fixedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// setClock swaps the device's time source under its lock (the release loop
// reads now while holding it).
func setClock(d *DelayDevice, c *fixedClock) {
	d.mu.Lock()
	d.now = c.now
	d.mu.Unlock()
}

// TestDelayEqualDueTimeFIFO: frames sharing one due time are released in
// exact insertion order (the tick tie-break), pinned with a frozen clock
// so every frame genuinely collides on the same instant.
func TestDelayEqualDueTimeFIFO(t *testing.T) {
	d := NewDelayDevice(func(src, dst int32) time.Duration { return 10 * time.Millisecond })
	defer d.Close()
	clk := &fixedClock{t: time.Unix(1000, 0)}
	setClock(d, clk)

	var mu sync.Mutex
	var got []uint64
	chain := BuildSendChain(func(f *Frame) error {
		mu.Lock()
		got = append(got, f.Seq)
		mu.Unlock()
		return nil
	}, d)

	const n = 200
	for i := 0; i < n; i++ {
		if err := chain(&Frame{Src: 0, Dst: 9, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if d.Pending() != n {
		t.Fatalf("Pending = %d with frozen clock, want %d", d.Pending(), n)
	}
	clk.advance(20 * time.Millisecond) // all n frames fall due at once
	waitFor(t, "all frames released", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("release order broke FIFO at %d: got seq %d", i, seq)
		}
	}
}

// TestDelayEqualDueTimeFIFOPerSender: with concurrent senders colliding on
// one due time, the global release order is some interleaving, but each
// sender's frames stay in that sender's order.
func TestDelayEqualDueTimeFIFOPerSender(t *testing.T) {
	d := NewDelayDevice(func(src, dst int32) time.Duration { return 10 * time.Millisecond })
	defer d.Close()
	clk := &fixedClock{t: time.Unix(1000, 0)}
	setClock(d, clk)

	var mu sync.Mutex
	perSender := make(map[int32][]uint64)
	chain := BuildSendChain(func(f *Frame) error {
		mu.Lock()
		perSender[f.Src] = append(perSender[f.Src], f.Seq)
		mu.Unlock()
		return nil
	}, d)

	const senders, each = 6, 80
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := chain(&Frame{Src: int32(s), Dst: 9, Seq: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	clk.advance(time.Minute)
	waitFor(t, "all frames released", func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, seqs := range perSender {
			total += len(seqs)
		}
		return total == senders*each
	})
	mu.Lock()
	defer mu.Unlock()
	for s, seqs := range perSender {
		for i, seq := range seqs {
			if seq != uint64(i) {
				t.Fatalf("sender %d released out of order at %d: seq %d", s, i, seq)
			}
		}
	}
}
