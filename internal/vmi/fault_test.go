package vmi

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// feedFrames pushes n frames for each of the given flows through dev in
// the given interleaving order and returns, per flow, the Seq values that
// came out the far end in order.
func feedFrames(t *testing.T, dev *FaultDevice, order [][2]int32, perFlowSeq map[[2]int32]*uint64) map[[2]int32][]uint64 {
	t.Helper()
	var mu sync.Mutex
	got := make(map[[2]int32][]uint64)
	sink := func(f *Frame) error {
		mu.Lock()
		k := [2]int32{f.Src, f.Dst}
		got[k] = append(got[k], f.Seq)
		mu.Unlock()
		return nil
	}
	chain := BuildSendChain(sink, dev)
	for _, pair := range order {
		seq := perFlowSeq[pair]
		f := &Frame{Src: pair[0], Dst: pair[1], Seq: *seq, Body: []byte(fmt.Sprintf("payload-%d-%d-%d", pair[0], pair[1], *seq))}
		*seq++
		if err := chain(f); err != nil {
			t.Fatal(err)
		}
	}
	dev.Close()
	mu.Lock()
	defer mu.Unlock()
	return got
}

// TestFaultDeviceDeterministicPerSeed: same seed, same frame sequence ⇒
// identical fault event logs, outputs, and stats.
func TestFaultDeviceDeterministicPerSeed(t *testing.T) {
	plan := FaultPlan{Drop: 0.2, Duplicate: 0.15, Reorder: 0.2, Corrupt: 0.1}
	mkOrder := func() ([][2]int32, map[[2]int32]*uint64) {
		var order [][2]int32
		for i := 0; i < 300; i++ {
			order = append(order, [2]int32{int32(i % 3), 9})
		}
		seqs := map[[2]int32]*uint64{}
		for i := int32(0); i < 3; i++ {
			seqs[[2]int32{i, 9}] = new(uint64)
		}
		return order, seqs
	}

	d1 := NewFaultDevice(42, plan)
	d1.RecordLog()
	order1, seqs1 := mkOrder()
	out1 := feedFrames(t, d1, order1, seqs1)

	d2 := NewFaultDevice(42, plan)
	d2.RecordLog()
	order2, seqs2 := mkOrder()
	out2 := feedFrames(t, d2, order2, seqs2)

	if !reflect.DeepEqual(d1.Log(), d2.Log()) {
		t.Error("same seed produced different fault event sequences")
	}
	if d1.Stats() != d2.Stats() {
		t.Errorf("same seed produced different stats: %+v vs %+v", d1.Stats(), d2.Stats())
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Error("same seed produced different delivery sequences")
	}
	if s := d1.Stats(); s.Dropped == 0 || s.Duplicated == 0 || s.Reordered == 0 || s.Corrupted == 0 {
		t.Errorf("expected every fault kind to fire at these rates: %+v", s)
	}

	d3 := NewFaultDevice(43, plan)
	d3.RecordLog()
	order3, seqs3 := mkOrder()
	feedFrames(t, d3, order3, seqs3)
	if reflect.DeepEqual(d1.Log(), d3.Log()) {
		t.Error("different seeds produced identical fault event sequences")
	}
}

// TestFaultDeviceFlowIndependence: a flow's fault decisions depend only on
// its own frame indices, not on how other flows interleave with it.
func TestFaultDeviceFlowIndependence(t *testing.T) {
	plan := FaultPlan{Drop: 0.3, Corrupt: 0.2}
	flowEvents := func(log []FaultEvent, src, dst int32) []FaultEvent {
		var out []FaultEvent
		for _, e := range log {
			if e.Src == src && e.Dst == dst {
				out = append(out, e)
			}
		}
		return out
	}

	// Interleaved: A,B,A,B,...; sequential: all A then all B.
	inter := NewFaultDevice(7, plan)
	inter.RecordLog()
	var orderI [][2]int32
	for i := 0; i < 100; i++ {
		orderI = append(orderI, [2]int32{1, 5}, [2]int32{2, 5})
	}
	feedFrames(t, inter, orderI, map[[2]int32]*uint64{{1, 5}: new(uint64), {2, 5}: new(uint64)})

	seqd := NewFaultDevice(7, plan)
	seqd.RecordLog()
	var orderS [][2]int32
	for i := 0; i < 100; i++ {
		orderS = append(orderS, [2]int32{1, 5})
	}
	for i := 0; i < 100; i++ {
		orderS = append(orderS, [2]int32{2, 5})
	}
	feedFrames(t, seqd, orderS, map[[2]int32]*uint64{{1, 5}: new(uint64), {2, 5}: new(uint64)})

	for _, flow := range [][2]int32{{1, 5}, {2, 5}} {
		if !reflect.DeepEqual(flowEvents(inter.Log(), flow[0], flow[1]), flowEvents(seqd.Log(), flow[0], flow[1])) {
			t.Errorf("flow %v decisions changed with interleaving", flow)
		}
	}
}

// TestFaultDeviceDropLosesExactlyTheDropped: delivered set = sent minus
// dropped, and nothing is delivered twice when only Drop is configured.
func TestFaultDeviceDropOnly(t *testing.T) {
	d := NewFaultDevice(11, FaultPlan{Drop: 0.25})
	order := make([][2]int32, 400)
	for i := range order {
		order[i] = [2]int32{0, 1}
	}
	out := feedFrames(t, d, order, map[[2]int32]*uint64{{0, 1}: new(uint64)})
	s := d.Stats()
	if s.Dropped == 0 {
		t.Fatal("no drops at rate 0.25 over 400 frames")
	}
	got := out[[2]int32{0, 1}]
	if int64(len(got))+s.Dropped != int64(len(order)) {
		t.Errorf("delivered %d + dropped %d != sent %d", len(got), s.Dropped, len(order))
	}
	seen := map[uint64]bool{}
	last := int64(-1)
	for _, seq := range got {
		if seen[seq] {
			t.Fatalf("seq %d delivered twice with only Drop configured", seq)
		}
		seen[seq] = true
		if int64(seq) < last {
			t.Fatalf("drop-only device reordered: %d after %d", seq, last)
		}
		last = int64(seq)
	}
}

// TestFaultDeviceDuplicate: duplicated frames arrive exactly twice.
func TestFaultDeviceDuplicate(t *testing.T) {
	d := NewFaultDevice(3, FaultPlan{Duplicate: 0.5})
	order := make([][2]int32, 200)
	for i := range order {
		order[i] = [2]int32{0, 1}
	}
	out := feedFrames(t, d, order, map[[2]int32]*uint64{{0, 1}: new(uint64)})
	s := d.Stats()
	got := out[[2]int32{0, 1}]
	if int64(len(got)) != int64(len(order))+s.Duplicated {
		t.Errorf("delivered %d, want %d sent + %d dups", len(got), len(order), s.Duplicated)
	}
}

// TestFaultDeviceReorder: held frames are released after ReorderSpan later
// frames, the delivered multiset is intact, and order actually changed.
func TestFaultDeviceReorder(t *testing.T) {
	d := NewFaultDevice(5, FaultPlan{Reorder: 0.3, ReorderSpan: 3})
	order := make([][2]int32, 300)
	for i := range order {
		order[i] = [2]int32{0, 1}
	}
	out := feedFrames(t, d, order, map[[2]int32]*uint64{{0, 1}: new(uint64)})
	got := out[[2]int32{0, 1}]
	if len(got) != len(order) {
		t.Fatalf("delivered %d frames, want %d", len(got), len(order))
	}
	seen := make(map[uint64]bool, len(got))
	inOrder := true
	for i, seq := range got {
		if seen[seq] {
			t.Fatalf("seq %d delivered twice", seq)
		}
		seen[seq] = true
		if uint64(i) != seq {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("reorder device at rate 0.3 left 300 frames in order")
	}
	if d.Stats().Reordered == 0 {
		t.Error("no reorder events recorded")
	}
	if d.HeldFrames() != 0 {
		t.Errorf("device still holds %d frames after Close", d.HeldFrames())
	}
}

// TestFaultDeviceCloseReleasesHeld: a flow that stops sending leaves its
// held frames to Close, which must flush them.
func TestFaultDeviceCloseReleasesHeld(t *testing.T) {
	d := NewFaultDevice(1, FaultPlan{Reorder: 1, ReorderSpan: 100})
	var got []uint64
	chain := BuildSendChain(func(f *Frame) error { got = append(got, f.Seq); return nil }, d)
	for i := 0; i < 5; i++ {
		if err := chain(&Frame{Src: 0, Dst: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 0 {
		t.Fatalf("frames escaped a hold-all plan: %v", got)
	}
	if d.HeldFrames() != 5 {
		t.Fatalf("HeldFrames = %d, want 5", d.HeldFrames())
	}
	d.Close()
	if len(got) != 5 {
		t.Errorf("Close released %d frames, want 5", len(got))
	}
	// Post-close frames pass through untouched.
	if err := chain(&Frame{Src: 0, Dst: 1, Seq: 99}); err != nil {
		t.Fatal(err)
	}
	if got[len(got)-1] != 99 {
		t.Error("post-close frame did not pass through")
	}
}

// TestFaultDeviceCorrupt: corrupted bodies differ from the original in
// exactly one bit.
func TestFaultDeviceCorrupt(t *testing.T) {
	d := NewFaultDevice(2, FaultPlan{Corrupt: 1})
	defer d.Close()
	orig := []byte("the quick brown fox jumps over the lazy dog")
	f := &Frame{Src: 0, Dst: 1, Body: append([]byte(nil), orig...)}
	var out *Frame
	if err := d.Send(f, func(g *Frame) error { out = g; return nil }); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range orig {
		if b := orig[i] ^ out.Body[i]; b != 0 {
			for ; b != 0; b &= b - 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bits, want 1", diff)
	}
}

// TestFaultDeviceJitterDelays: jittered frames are cloned and arrive
// later; the caller's frame can be recycled immediately.
func TestFaultDeviceJitterDelays(t *testing.T) {
	d := NewFaultDevice(4, FaultPlan{JitterMax: 20 * time.Millisecond})
	defer d.Close()
	body := []byte("jittered payload")
	f := &Frame{Src: 0, Dst: 1, Body: append([]byte(nil), body...)}
	done := make(chan *Frame, 1)
	if err := d.Send(f, func(g *Frame) error { done <- g; return nil }); err != nil {
		t.Fatal(err)
	}
	// Scribble over the caller's body: the device must have cloned.
	for i := range f.Body {
		f.Body[i] = 0xFF
	}
	select {
	case g := <-done:
		if !bytes.Equal(g.Body, body) {
			t.Error("jittered frame aliased the caller's recycled body")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("jittered frame never delivered")
	}
}

// TestPartitionDeviceSeverHeal: severed links drop, healed links pass, and
// the affects predicate scopes the damage.
func TestPartitionDeviceSeverHeal(t *testing.T) {
	wan := NewPartitionDevice(func(src, dst int32) bool { return src < 2 != (dst < 2) })
	var got []uint64
	chain := BuildSendChain(func(f *Frame) error { got = append(got, f.Seq); return nil }, wan)

	send := func(src, dst int32, seq uint64) {
		t.Helper()
		if err := chain(&Frame{Src: src, Dst: dst, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	send(0, 3, 1) // cross, healed: passes
	wan.Sever()
	send(0, 3, 2) // cross, severed: dropped
	send(0, 1, 3) // local, severed: passes
	wan.Heal()
	send(0, 3, 4) // cross, healed again: passes

	want := []uint64{1, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("delivered %v, want %v", got, want)
	}
	if wan.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", wan.Dropped())
	}
}
