package vmi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRelHeaderRoundTrip(t *testing.T) {
	cases := []RelHeader{
		{Kind: relKindData, Seq: 1, Ack: 0, CRC: 0xDEADBEEF},
		{Kind: relKindData, Seq: 1<<64 - 1, Ack: 1<<64 - 2, CRC: 0},
		{Kind: relKindAck, Seq: 0, Ack: 42, CRC: 7},
	}
	for _, h := range cases {
		payload := []byte("payload bytes")
		b := AppendRelHeader(nil, h)
		b = append(b, payload...)
		got, rest, err := DecodeRelHeader(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if got != h {
			t.Errorf("round trip %+v -> %+v", h, got)
		}
		if !bytes.Equal(rest, payload) {
			t.Errorf("payload %q -> %q", payload, rest)
		}
	}
}

func TestRelHeaderDecodeErrors(t *testing.T) {
	good := AppendRelHeader(nil, RelHeader{Kind: relKindData, Seq: 1})
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short", good[:relHeaderLen-1]},
		{"bad magic", append([]byte{0, 0, 0, 0}, good[4:]...)},
		{"unknown kind", func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}()},
	}
	for _, tc := range cases {
		if _, _, err := DecodeRelHeader(tc.b); !errors.Is(err, ErrBadRelHeader) {
			t.Errorf("%s: err = %v, want ErrBadRelHeader", tc.name, err)
		}
	}
}

// relPair wires two TCP nodes, each wrapped in a Reliable layer, over
// loopback. PEs 0..1 live on node 0, PEs 2..3 on node 1.
type relPair struct {
	t0, t1 *TCP
	r0, r1 *Reliable

	mu         sync.Mutex
	got0, got1 []*Frame
}

func newRelPair(t *testing.T, cfg0, cfg1 ReliableConfig) *relPair {
	t.Helper()
	route := func(pe int32) int {
		if pe < 2 {
			return 0
		}
		return 1
	}
	p := &relPair{}
	sink := func(dst *[]*Frame) RecvFunc {
		return func(f *Frame) error {
			p.mu.Lock()
			*dst = append(*dst, f.Clone())
			p.mu.Unlock()
			return nil
		}
	}
	p.t0 = NewTCP(0, map[int]string{0: "127.0.0.1:0", 1: ""}, route, nil)
	p.t1 = NewTCP(1, map[int]string{0: "", 1: "127.0.0.1:0"}, route, nil)
	p.r0 = NewReliable(p.t0, sink(&p.got0), cfg0)
	p.r1 = NewReliable(p.t1, sink(&p.got1), cfg1)
	a0, err := p.t0.Listen()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.t1.Listen()
	if err != nil {
		t.Fatal(err)
	}
	p.t0.SetAddr(1, a1)
	p.t1.SetAddr(0, a0)
	t.Cleanup(func() {
		p.r0.Close()
		p.r1.Close()
		p.t0.Close()
		p.t1.Close()
	})
	return p
}

func (p *relPair) at1() []*Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Frame(nil), p.got1...)
}

func (p *relPair) at0() []*Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Frame(nil), p.got0...)
}

// assertInOrder checks frames carry bodies "msg-0".."msg-(n-1)" in order,
// each exactly once.
func assertInOrder(t *testing.T, frames []*Frame, n int) {
	t.Helper()
	if len(frames) != n {
		t.Fatalf("delivered %d frames, want %d", len(frames), n)
	}
	for i, f := range frames {
		if want := fmt.Sprintf("msg-%d", i); string(f.Body) != want {
			t.Fatalf("frame %d body = %q, want %q", i, f.Body, want)
		}
		if f.Flags&FlagReliable != 0 {
			t.Fatalf("frame %d still carries FlagReliable", i)
		}
	}
}

func TestReliableLosslessDelivery(t *testing.T) {
	p := newRelPair(t, ReliableConfig{}, ReliableConfig{})
	const n = 200
	for i := 0; i < n; i++ {
		f := &Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}
		if err := p.r0.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames", func() bool { return len(p.at1()) == n })
	assertInOrder(t, p.at1(), n)
	// Standalone acks must drain the retransmit window even with no
	// reverse traffic.
	waitFor(t, "window drain", func() bool { return p.r0.Outstanding(1) == 0 })
	if s := p.r0.Stats(); s.DataSent != n {
		t.Errorf("DataSent = %d, want %d", s.DataSent, n)
	}
}

func TestReliableBidirectional(t *testing.T) {
	p := newRelPair(t, ReliableConfig{}, ReliableConfig{})
	const n = 100
	for i := 0; i < n; i++ {
		if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
		if err := p.r1.Send(&Frame{Src: 2, Dst: 0, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "both directions", func() bool { return len(p.at1()) == n && len(p.at0()) == n })
	assertInOrder(t, p.at1(), n)
	assertInOrder(t, p.at0(), n)
	waitFor(t, "windows drain", func() bool {
		return p.r0.Outstanding(1) == 0 && p.r1.Outstanding(0) == 0
	})
}

// TestReliableRecoversFromDrops: heavy seeded loss below the reliability
// layer is repaired by retransmission; delivery stays exactly-once and
// in-order.
func TestReliableRecoversFromDrops(t *testing.T) {
	fd := NewFaultDevice(1234, FaultPlan{Drop: 0.3})
	defer fd.Close()
	p := newRelPair(t,
		ReliableConfig{RTO: 5 * time.Millisecond, SendFaults: []SendDevice{fd}},
		ReliableConfig{RTO: 5 * time.Millisecond})
	const n = 150
	for i := 0; i < n; i++ {
		if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames despite drops", func() bool { return len(p.at1()) == n })
	assertInOrder(t, p.at1(), n)
	if s := p.r0.Stats(); s.Retransmits == 0 {
		t.Error("30% drop produced zero retransmits")
	}
	if fd.Stats().Dropped == 0 {
		t.Error("fault device dropped nothing at rate 0.3")
	}
}

// TestReliableSuppressesDuplicates: duplicated wire frames are delivered
// upward exactly once.
func TestReliableSuppressesDuplicates(t *testing.T) {
	fd := NewFaultDevice(99, FaultPlan{Duplicate: 0.5})
	defer fd.Close()
	p := newRelPair(t, ReliableConfig{SendFaults: []SendDevice{fd}}, ReliableConfig{})
	const n = 100
	for i := 0; i < n; i++ {
		if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames", func() bool { return len(p.at1()) >= n })
	// Give any straggler duplicates time to arrive, then assert none
	// leaked through.
	waitFor(t, "window drain", func() bool { return p.r0.Outstanding(1) == 0 })
	assertInOrder(t, p.at1(), n)
	if s := p.r1.Stats(); s.DupDropped == 0 {
		t.Error("50% duplication produced zero suppressed duplicates")
	}
}

// TestReliableSurvivesCorruption: bit-flipped frames fail the CRC, are
// dropped, and are repaired by retransmission.
func TestReliableSurvivesCorruption(t *testing.T) {
	fd := NewFaultDevice(7, FaultPlan{Corrupt: 0.3})
	defer fd.Close()
	p := newRelPair(t,
		ReliableConfig{RTO: 5 * time.Millisecond, SendFaults: []SendDevice{fd}},
		ReliableConfig{RTO: 5 * time.Millisecond})
	const n = 100
	for i := 0; i < n; i++ {
		if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames despite corruption", func() bool { return len(p.at1()) == n })
	assertInOrder(t, p.at1(), n)
	if s := p.r1.Stats(); s.CrcDropped == 0 && s.BadHdrs == 0 {
		t.Error("30% corruption never tripped CRC or header checks")
	}
}

// TestReliableReconnectsAfterDropConn: a severed TCP connection mid-stream
// is re-dialed by the retransmit path; nothing is lost or reordered, and
// the transport error is absorbed rather than surfaced.
func TestReliableReconnectsAfterDropConn(t *testing.T) {
	var failed sync.Once
	var failErr error
	p := newRelPair(t,
		ReliableConfig{RTO: 5 * time.Millisecond,
			OnFail: func(err error) { failed.Do(func() { failErr = err }) }},
		ReliableConfig{RTO: 5 * time.Millisecond})

	const n = 200
	for i := 0; i < n; i++ {
		if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
		if i == n/2 {
			waitFor(t, "live connection", func() bool { return p.t0.DropConn(1) })
		}
	}
	waitFor(t, "all frames across reconnect", func() bool { return len(p.at1()) == n })
	assertInOrder(t, p.at1(), n)
	waitFor(t, "window drain", func() bool { return p.r0.Outstanding(1) == 0 })
	if failErr != nil {
		t.Errorf("transport drop escalated to terminal failure: %v", failErr)
	}
	if s := p.r0.Stats(); s.TransportErrs == 0 {
		t.Error("DropConn produced no absorbed transport error")
	}
}

// TestReliableBudgetExhaustion: when every frame is lost, the retransmit
// budget runs out and the error handler — and only then — fires.
func TestReliableBudgetExhaustion(t *testing.T) {
	fd := NewFaultDevice(1, FaultPlan{Drop: 1})
	defer fd.Close()
	errc := make(chan error, 1)
	p := newRelPair(t,
		ReliableConfig{RTO: 2 * time.Millisecond, RTOMax: 4 * time.Millisecond, MaxRetransmits: 3, SendFaults: []SendDevice{fd},
			OnFail: func(err error) {
				select {
				case errc <- err:
				default:
				}
			}},
		ReliableConfig{})
	if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("handler fired with nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retransmit budget exhaustion never fired the error handler")
	}
	// After terminal failure, Send reports the stored error.
	waitFor(t, "send fails terminally", func() bool {
		return p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte("late")}) != nil
	})
}

// TestReliablePassthrough: frames without FlagReliable (pre-reliability
// senders) bypass the layer untouched.
func TestReliablePassthrough(t *testing.T) {
	p := newRelPair(t, ReliableConfig{}, ReliableConfig{})
	// Send below the reliability layer, straight through the TCP device.
	if err := p.t0.Send(&Frame{Src: 0, Dst: 2, Body: []byte("raw")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "raw frame", func() bool { return len(p.at1()) == 1 })
	if got := p.at1()[0]; string(got.Body) != "raw" {
		t.Errorf("body = %q, want %q", got.Body, "raw")
	}
}
