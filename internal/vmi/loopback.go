package vmi

// Loopback is the terminal device for PEs that share an address space: it
// hands the frame to a delivery callback synchronously. It corresponds to
// the fast first driver in the paper's chain, which delivers messages for
// "affiliated" nodes without passing through the delay device.
type Loopback struct {
	deliver func(*Frame) error
}

// NewLoopback builds a loopback terminal around a delivery callback.
func NewLoopback(deliver func(*Frame) error) *Loopback {
	return &Loopback{deliver: deliver}
}

// Name implements SendDevice.
func (l *Loopback) Name() string { return "loopback" }

// Send implements SendDevice; it always delivers and never calls next.
func (l *Loopback) Send(f *Frame, _ SendFunc) error { return l.deliver(f) }

// Terminal returns the loopback as a SendFunc for use as a chain terminal.
func (l *Loopback) Terminal() SendFunc { return l.deliver }
