package vmi

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) SendDevice {
		return SendDeviceFunc{DeviceName: name, Fn: func(f *Frame, next SendFunc) error {
			order = append(order, name)
			return next(f)
		}}
	}
	var delivered bool
	chain := BuildSendChain(func(*Frame) error { delivered = true; return nil }, mk("a"), mk("b"), mk("c"))
	if err := chain(&Frame{}); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("terminal not reached")
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestChainNilTerminalErrors(t *testing.T) {
	chain := BuildSendChain(nil)
	if err := chain(&Frame{}); err == nil {
		t.Error("nil-terminal chain delivered silently")
	}
	rchain := BuildRecvChain(nil)
	if err := rchain(&Frame{}); err == nil {
		t.Error("nil-terminal recv chain delivered silently")
	}
}

func TestDelayDeviceZeroLatencyIsSynchronous(t *testing.T) {
	d := NewDelayDevice(func(src, dst int32) time.Duration { return 0 })
	defer d.Close()
	var got *Frame
	f := &Frame{Src: 0, Dst: 1}
	if err := d.Send(f, func(g *Frame) error { got = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Error("zero-latency frame was not delivered synchronously")
	}
	if d.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", d.Pending())
	}
}

func TestDelayDeviceDelays(t *testing.T) {
	const lat = 30 * time.Millisecond
	d := NewDelayDevice(func(src, dst int32) time.Duration { return lat })
	defer d.Close()

	done := make(chan time.Time, 1)
	start := time.Now()
	err := d.Send(&Frame{Src: 0, Dst: 1}, func(*Frame) error {
		done <- time.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case at := <-done:
		if el := at.Sub(start); el < lat {
			t.Errorf("delivered after %v, want >= %v", el, lat)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frame never delivered")
	}
}

func TestDelayDevicePreservesFIFO(t *testing.T) {
	d := NewDelayDevice(func(src, dst int32) time.Duration { return 5 * time.Millisecond })
	defer d.Close()

	const n = 100
	var mu sync.Mutex
	var got []uint64
	deliver := func(f *Frame) error {
		mu.Lock()
		got = append(got, f.Seq)
		mu.Unlock()
		return nil
	}
	for i := 0; i < n; i++ {
		if err := d.Send(&Frame{Src: 0, Dst: 1, Seq: uint64(i)}, deliver); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		k := len(got)
		mu.Unlock()
		if k == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d delivered", k, n)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < n; i++ {
		if got[i] != uint64(i) {
			t.Fatalf("delivery order broken at %d: %v", i, got[:i+1])
		}
	}
}

func TestDelayDeviceCloseDrains(t *testing.T) {
	d := NewDelayDevice(func(src, dst int32) time.Duration { return time.Hour })
	var mu sync.Mutex
	var n int
	for i := 0; i < 10; i++ {
		_ = d.Send(&Frame{Seq: uint64(i)}, func(*Frame) error {
			mu.Lock()
			n++
			mu.Unlock()
			return nil
		})
	}
	if d.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", d.Pending())
	}
	d.Close()
	if n != 10 {
		t.Errorf("Close drained %d frames, want 10", n)
	}
	// Idempotent close and post-close sends pass through.
	d.Close()
	var through bool
	_ = d.Send(&Frame{}, func(*Frame) error { through = true; return nil })
	if !through {
		t.Error("post-close send did not pass through")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	dev := &CompressDevice{}
	body := bytes.Repeat([]byte("abcdefgh"), 512) // highly compressible
	f := &Frame{Src: 1, Dst: 2, Body: append([]byte(nil), body...)}

	var sent *Frame
	if err := dev.Send(f, func(g *Frame) error { sent = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if sent.Flags&FlagCompressed == 0 {
		t.Fatal("compressible body not compressed")
	}
	if len(sent.Body) >= len(body) {
		t.Fatalf("compression grew body: %d >= %d", len(sent.Body), len(body))
	}
	var recvd *Frame
	if err := dev.Recv(sent, func(g *Frame) error { recvd = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recvd.Body, body) {
		t.Error("compress round trip corrupted body")
	}
	if recvd.Flags&FlagCompressed != 0 {
		t.Error("compressed flag not cleared")
	}
}

func TestCompressSkipsSmallAndIncompressible(t *testing.T) {
	dev := &CompressDevice{}
	small := &Frame{Body: []byte("tiny")}
	var out *Frame
	if err := dev.Send(small, func(g *Frame) error { out = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if out.Flags&FlagCompressed != 0 {
		t.Error("small body compressed")
	}
	rnd := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(rnd)
	f := &Frame{Body: append([]byte(nil), rnd...)}
	if err := dev.Send(f, func(g *Frame) error { out = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if out.Flags&FlagCompressed != 0 && len(out.Body) >= len(rnd) {
		t.Error("incompressible body marked compressed without shrinking")
	}
}

func TestChecksumRoundTripAndDetection(t *testing.T) {
	dev := ChecksumDevice{}
	body := []byte("the quick brown fox")
	f := &Frame{Body: append([]byte(nil), body...)}
	var sent *Frame
	if err := dev.Send(f, func(g *Frame) error { sent = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if len(sent.Body) != len(body)+4 {
		t.Fatalf("checksum not appended: %d bytes", len(sent.Body))
	}
	ok := sent.Clone()
	var recvd *Frame
	if err := dev.Recv(ok, func(g *Frame) error { recvd = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recvd.Body, body) {
		t.Error("checksum round trip corrupted body")
	}
	bad := sent.Clone()
	bad.Body[0] ^= 0xFF
	if err := dev.Recv(bad, func(*Frame) error { return nil }); err != ErrChecksum {
		t.Errorf("corruption not detected: err=%v", err)
	}
}

func TestCipherRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	dev, err := NewCipherDevice(key)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("secret coordinates of all atoms")
	f := &Frame{Src: 4, Seq: 99, Body: append([]byte(nil), body...)}
	var sent *Frame
	if err := dev.Send(f, func(g *Frame) error { sent = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sent.Body, body) {
		t.Fatal("cipher left body in the clear")
	}
	var recvd *Frame
	if err := dev.Recv(sent, func(g *Frame) error { recvd = g; return nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recvd.Body, body) {
		t.Error("cipher round trip corrupted body")
	}
}

func TestCipherRejectsBadKey(t *testing.T) {
	if _, err := NewCipherDevice([]byte("short")); err == nil {
		t.Error("bad key accepted")
	}
}

// Property: the full transform stack (compress → checksum → cipher on
// send; cipher → checksum → decompress on receive) is the identity on
// arbitrary bodies.
func TestTransformStackProperty(t *testing.T) {
	cd := &CompressDevice{}
	cs := ChecksumDevice{}
	ci, err := NewCipherDevice(bytes.Repeat([]byte{3}, 16))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(body []byte, seq uint64, src int32) bool {
		if len(body) == 0 {
			return true
		}
		var out *Frame
		send := BuildSendChain(func(f *Frame) error { out = f; return nil }, cd, cs, ci)
		in := &Frame{Src: src, Seq: seq, Body: append([]byte(nil), body...)}
		if err := send(in); err != nil {
			return false
		}
		var final *Frame
		recv := BuildRecvChain(func(f *Frame) error { final = f; return nil }, ci, cs, cd)
		if err := recv(out); err != nil {
			return false
		}
		return bytes.Equal(final.Body, body) && final.Flags == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStripeRoundTrip(t *testing.T) {
	re := NewStripeReassembler()
	var final *Frame
	recv := BuildRecvChain(func(f *Frame) error { final = f; return nil }, re)

	// Lanes deliver straight into the receive chain, shuffled below.
	var held []*Frame
	lane := func(f *Frame) error { held = append(held, f); return nil }
	dev, err := NewStripeDevice(lane, lane, lane)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 10_000)
	for i := range body {
		body[i] = byte(i * 31)
	}
	in := &Frame{Src: 2, Dst: 5, Prio: -1, Seq: 42, Body: append([]byte(nil), body...)}
	if err := dev.Send(in, nil); err != nil {
		t.Fatal(err)
	}
	if len(held) != 3 {
		t.Fatalf("striped into %d chunks, want 3", len(held))
	}
	// Deliver out of order.
	for _, i := range []int{2, 0, 1} {
		if err := recv(held[i]); err != nil {
			t.Fatal(err)
		}
	}
	if final == nil {
		t.Fatal("frame never reassembled")
	}
	if !bytes.Equal(final.Body, body) {
		t.Error("stripe round trip corrupted body")
	}
	if final.Src != 2 || final.Dst != 5 || final.Prio != -1 || final.Seq != 42 {
		t.Errorf("stripe lost header fields: %+v", final)
	}
	if re.Pending() != 0 {
		t.Errorf("reassembler still holds %d partial frames", re.Pending())
	}
}

func TestStripeSmallFramePassesThrough(t *testing.T) {
	var laneHits int
	lane := func(f *Frame) error { laneHits++; return nil }
	dev, err := NewStripeDevice(lane, lane)
	if err != nil {
		t.Fatal(err)
	}
	var next int
	f := &Frame{Body: []byte("small")}
	if err := dev.Send(f, func(*Frame) error { next++; return nil }); err != nil {
		t.Fatal(err)
	}
	if next != 1 || laneHits != 0 {
		t.Errorf("small frame: next=%d lanes=%d, want 1,0", next, laneHits)
	}
	if f.Flags&FlagStriped != 0 {
		t.Error("small frame marked striped")
	}
}

// Property: striping across k lanes and reassembling in any order is the
// identity for arbitrary bodies.
func TestStripeProperty(t *testing.T) {
	prop := func(body []byte, seed int64) bool {
		if len(body) < 256 {
			body = append(body, bytes.Repeat([]byte{9}, 256)...)
		}
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		var held []*Frame
		lane := func(f *Frame) error { held = append(held, f); return nil }
		lanes := make([]SendFunc, k)
		for i := range lanes {
			lanes[i] = lane
		}
		dev, err := NewStripeDevice(lanes...)
		if err != nil {
			return false
		}
		in := &Frame{Src: 1, Seq: uint64(seed), Body: append([]byte(nil), body...)}
		if err := dev.Send(in, lane); err != nil {
			return false
		}
		re := NewStripeReassembler()
		var final *Frame
		recv := BuildRecvChain(func(f *Frame) error { final = f; return nil }, re)
		rng.Shuffle(len(held), func(i, j int) { held[i], held[j] = held[j], held[i] })
		for _, f := range held {
			if err := recv(f); err != nil {
				return false
			}
		}
		return final != nil && bytes.Equal(final.Body, body)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
