package vmi

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// StripeDevice reproduces VMI's multi-rail capability: "by loading multiple
// modules simultaneously, data may be striped across multiple
// interconnects." On send, a frame's body is split into roughly equal
// chunks, one per lane, each sent down its own sub-chain as an independent
// frame. The matching StripeReassembler on the receive side collects the
// chunks (which may arrive in any order and interleaved across frames) and
// reconstitutes the original frame.
//
// Each chunk body is prefixed with a 12-byte header:
//
//	uint32 chunk index | uint32 chunk count | uint32 original body length
type StripeDevice struct {
	lanes []SendFunc
	// MinSize is the smallest body worth striping; zero means 256 bytes.
	MinSize int
}

// NewStripeDevice builds a striping device over the given lanes. At least
// one lane is required; with exactly one lane frames pass through intact.
func NewStripeDevice(lanes ...SendFunc) (*StripeDevice, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("vmi: stripe device needs at least one lane")
	}
	return &StripeDevice{lanes: lanes}, nil
}

// Name implements SendDevice.
func (d *StripeDevice) Name() string { return "stripe" }

const stripeHeaderLen = 12

// Send implements SendDevice. Frames too small to stripe, frames without a
// serialized body, and already-striped frames go down lane 0 unchanged.
func (d *StripeDevice) Send(f *Frame, next SendFunc) error {
	min := d.MinSize
	if min <= 0 {
		min = 256
	}
	if len(d.lanes) == 1 || f.Body == nil || len(f.Body) < min || f.Flags&FlagStriped != 0 {
		if next != nil {
			return next(f)
		}
		return d.lanes[0](f)
	}
	k := len(d.lanes)
	if k > len(f.Body) {
		k = len(f.Body)
	}
	orig := len(f.Body)
	per := (orig + k - 1) / k
	for i := 0; i < k; i++ {
		lo := i * per
		hi := lo + per
		if hi > orig {
			hi = orig
		}
		chunk := make([]byte, stripeHeaderLen+hi-lo)
		binary.BigEndian.PutUint32(chunk[0:], uint32(i))
		binary.BigEndian.PutUint32(chunk[4:], uint32(k))
		binary.BigEndian.PutUint32(chunk[8:], uint32(orig))
		copy(chunk[stripeHeaderLen:], f.Body[lo:hi])
		cf := *f // copy header fields (Src, Dst, Prio, Class, Seq)
		cf.Body = chunk
		cf.Obj = nil
		cf.Flags |= FlagStriped
		if err := d.lanes[i](&cf); err != nil {
			return fmt.Errorf("vmi: stripe lane %d: %w", i, err)
		}
	}
	return nil
}

// StripeReassembler is the receive-side peer of StripeDevice. It buffers
// chunks keyed by (src, seq) until a frame is complete, then forwards the
// reassembled frame. Non-striped frames pass through untouched.
type StripeReassembler struct {
	mu      sync.Mutex
	partial map[stripeKey]*stripeState
}

type stripeKey struct {
	src int32
	seq uint64
}

type stripeState struct {
	chunks  [][]byte
	have    int
	total   int
	origLen int
	proto   Frame // header fields from the first chunk seen
}

// NewStripeReassembler builds an empty reassembler.
func NewStripeReassembler() *StripeReassembler {
	return &StripeReassembler{partial: make(map[stripeKey]*stripeState)}
}

// Name implements RecvDevice.
func (r *StripeReassembler) Name() string { return "stripe-reassemble" }

// Pending reports how many frames are partially reassembled.
func (r *StripeReassembler) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.partial)
}

// Recv implements RecvDevice.
func (r *StripeReassembler) Recv(f *Frame, next RecvFunc) error {
	if f.Flags&FlagStriped == 0 {
		return next(f)
	}
	if len(f.Body) < stripeHeaderLen {
		return fmt.Errorf("vmi: striped chunk too short (%d bytes)", len(f.Body))
	}
	idx := int(binary.BigEndian.Uint32(f.Body[0:]))
	total := int(binary.BigEndian.Uint32(f.Body[4:]))
	orig := int(binary.BigEndian.Uint32(f.Body[8:]))
	if total <= 0 || idx < 0 || idx >= total || orig < 0 || orig > maxFrameBody {
		return fmt.Errorf("vmi: bad stripe header idx=%d total=%d orig=%d", idx, total, orig)
	}
	key := stripeKey{src: f.Src, seq: f.Seq}

	r.mu.Lock()
	st, ok := r.partial[key]
	if !ok {
		st = &stripeState{chunks: make([][]byte, total), total: total, origLen: orig, proto: *f}
		st.proto.Body = nil
		r.partial[key] = st
	}
	if st.total != total || st.origLen != orig {
		r.mu.Unlock()
		return fmt.Errorf("vmi: inconsistent stripe headers for %v", key)
	}
	if st.chunks[idx] == nil {
		// Copy: the chunk outlives this Recv call, and bodies arriving off
		// the TCP transport alias a reader buffer that is reused after it.
		st.chunks[idx] = append([]byte(nil), f.Body[stripeHeaderLen:]...)
		st.have++
	}
	complete := st.have == st.total
	if complete {
		delete(r.partial, key)
	}
	r.mu.Unlock()

	if !complete {
		return nil
	}
	body := make([]byte, 0, st.origLen)
	for _, c := range st.chunks {
		body = append(body, c...)
	}
	if len(body) != st.origLen {
		return fmt.Errorf("vmi: reassembled %d bytes, want %d", len(body), st.origLen)
	}
	out := st.proto
	out.Body = body
	out.Flags &^= FlagStriped
	return next(&out)
}
