package vmi

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameDecode: DecodeFrom must never panic and must round-trip
// whatever it accepts.
func FuzzFrameDecode(f *testing.F) {
	// Seed with a valid encoded frame and some mutations.
	var buf bytes.Buffer
	(&Frame{Src: 1, Dst: 2, Prio: -3, Class: ClassSystem, Seq: 9, Body: []byte("seed")}).EncodeTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(buf.Bytes()[:headerLen-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.DecodeFrom(bytes.NewReader(data)); err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-encode and decode to the same frame.
		var out bytes.Buffer
		if err := fr.EncodeTo(&out); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		var fr2 Frame
		if err := fr2.DecodeFrom(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Src != fr.Src || fr2.Dst != fr.Dst || fr2.Seq != fr.Seq || !bytes.Equal(fr2.Body, fr.Body) {
			t.Fatal("round trip not stable")
		}
	})
}

// FuzzRecvChain: arbitrary bytes through the full receive transform chain
// must error or deliver, never panic.
func FuzzRecvChain(f *testing.F) {
	cd := &CompressDevice{}
	cs := ChecksumDevice{}
	ci, err := NewCipherDevice(bytes.Repeat([]byte{5}, 16))
	if err != nil {
		f.Fatal(err)
	}
	recv := BuildRecvChain(func(*Frame) error { return nil }, ci, cs, cd)

	// Seed with a legitimately transformed frame.
	var wire bytes.Buffer
	send := BuildSendChain(func(fr *Frame) error { return fr.EncodeTo(&wire) }, cd, cs, ci)
	_ = send(&Frame{Src: 3, Seq: 8, Body: bytes.Repeat([]byte("payload "), 64)})
	f.Add(wire.Bytes())
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.DecodeFrom(bytes.NewReader(data)); err != nil {
			return
		}
		_ = recv(&fr) // errors allowed; panics fail the fuzzer
	})
}

// FuzzEpochFence: the epoch field of the reliability header — the fence
// that drops a dead node's stale traffic — must decode within its 24-bit
// range, survive an in-place restamp (what retransmission does after an
// epoch bump) without disturbing any other header field or the payload,
// and reject truncated headers. The fence comparison itself must agree
// with the restamped value.
func FuzzEpochFence(f *testing.F) {
	seed := func(h RelHeader, payload []byte, epoch uint32) {
		f.Add(append(AppendRelHeader(nil, h), payload...), epoch)
	}
	seed(RelHeader{Kind: relKindData, Epoch: 1, Seq: 5, Ack: 2, CRC: 0xBEEF}, []byte("fenced"), 2)
	seed(RelHeader{Kind: relKindData, Epoch: MaxEpoch, Seq: 1}, nil, 0)
	seed(RelHeader{Kind: relKindAck, Epoch: 3, Ack: 9}, nil, 3)
	seed(RelHeader{Kind: relKindData, Epoch: 0, Seq: 1}, []byte{0xFF}, MaxEpoch+1)
	f.Add([]byte{}, uint32(1))
	f.Add(AppendRelHeader(nil, RelHeader{Kind: relKindData, Epoch: 7})[:relHeaderLen-1], uint32(8))

	f.Fuzz(func(t *testing.T, data []byte, epoch uint32) {
		h, payload, err := DecodeRelHeader(data)
		if err != nil {
			return // rejection (including truncation) is fine; panics are not
		}
		if h.Epoch > MaxEpoch {
			t.Fatalf("decoded epoch %d exceeds the 24-bit field", h.Epoch)
		}
		// Restamp in place, as the retransmit path does after SetEpoch.
		buf := append(AppendRelHeader(nil, h), payload...)
		restampEpoch(buf, epoch&MaxEpoch)
		h2, p2, err := DecodeRelHeader(buf)
		if err != nil {
			t.Fatalf("re-decode after restamp failed: %v", err)
		}
		if want := epoch & MaxEpoch; h2.Epoch != want {
			t.Fatalf("restamped epoch = %d, want %d", h2.Epoch, want)
		}
		if h2.Kind != h.Kind || h2.Seq != h.Seq || h2.Ack != h.Ack {
			t.Fatalf("restamp disturbed the header: %+v vs %+v", h, h2)
		}
		// The CRC covers the epoch, so a restamp must refresh it to the
		// valid checksum of the new header — otherwise every restamped
		// retransmit would be rejected as corrupt.
		if h2.Epoch != h.Epoch && h2.CRC != relCRC(h2, p2) {
			t.Fatalf("restamp left a stale CRC: %#x, want %#x", h2.CRC, relCRC(h2, p2))
		}
		if !bytes.Equal(p2, payload) {
			t.Fatal("restamp disturbed the payload")
		}
		// The fence predicate must see exactly the restamped value: a
		// frame restamped to the current epoch is never stale.
		if h2.Epoch < epoch&MaxEpoch {
			t.Fatal("restamped frame would be fenced by its own epoch")
		}
	})
}

// FuzzReliableFrame: the reliability header codec must never panic, and
// whatever it accepts must decode to the same header and payload after
// re-encoding. Seeds cover both kinds and sequence/ack wraparound values.
func FuzzReliableFrame(f *testing.F) {
	seed := func(h RelHeader, payload []byte) {
		f.Add(append(AppendRelHeader(nil, h), payload...))
	}
	seed(RelHeader{Kind: relKindData, Seq: 1, Ack: 0, CRC: 0x1234}, []byte("payload"))
	seed(RelHeader{Kind: relKindAck, Ack: 42}, nil)
	seed(RelHeader{Kind: relKindData, Seq: math.MaxUint64, Ack: math.MaxUint64 - 1, CRC: math.MaxUint32}, []byte{0})
	seed(RelHeader{Kind: relKindAck, Seq: math.MaxUint64, Ack: math.MaxUint64}, bytes.Repeat([]byte{0xAA}, 64))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x52}, relHeaderLen))
	f.Add(AppendRelHeader(nil, RelHeader{Kind: relKindData, Seq: 7})[:relHeaderLen-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := DecodeRelHeader(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Re-encode and decode: the header and payload must be stable.
		// (Byte-level equality is not required — the reserved bytes are
		// not round-tripped.)
		re := append(AppendRelHeader(nil, h), payload...)
		h2, p2, err := DecodeRelHeader(re)
		if err != nil {
			t.Fatalf("re-decode of accepted header failed: %v", err)
		}
		if h2 != h {
			t.Fatalf("header round trip not stable: %+v vs %+v", h, h2)
		}
		if !bytes.Equal(p2, payload) {
			t.Fatal("payload round trip not stable")
		}
	})
}
