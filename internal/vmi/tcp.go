package vmi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridmdo/internal/metrics"
)

// TCP is the wide-area (and general inter-process) terminal device: frames
// are serialized with the VMI framing and carried over TCP connections
// between nodes. A "node" is one OS process hosting a contiguous set of
// PEs; the route function maps a destination PE to its node ID.
//
// Connections are established lazily on first send and are reused in both
// directions: an accepted connection is also registered as the outgoing
// path to the peer that dialed in, so a pair of nodes shares one
// connection per direction of first use.
//
// Writes are coalesced with a flush-on-idle policy: Send serializes the
// frame into the connection's pending buffer and returns; a per-connection
// writer goroutine drains the buffer in single large writes, so a burst of
// frames pays one syscall and the socket is flushed exactly when the send
// queue goes idle rather than once per frame. Frames received from the
// wire are decoded with zero-copy bodies: the frame passed to onRecv (and
// its Body) is valid only for the duration of the call, and receivers that
// retain data must copy (Frame.Clone does).
type TCP struct {
	self   int
	addrs  map[int]string
	route  func(pe int32) int
	onRecv RecvFunc

	ln net.Listener

	mu     sync.Mutex
	out    map[int]*tcpConn
	closed bool
	done   chan struct{} // closed by Close; aborts dial backoff waits

	// aux tracks accepted connections that were NOT registered in out
	// (the peer slot was already taken — e.g. two nodes dialed each other
	// simultaneously). They are read-only from this side, but Close must
	// still close them: their readLoops would otherwise block until the
	// peer closes, and a peer doing the same produces a shutdown deadlock.
	aux map[net.Conn]struct{}

	wg sync.WaitGroup

	// errHandler receives asynchronous reader and writer errors; nil means
	// ignore (connection teardown during shutdown is normal). Because Send
	// returns before the coalesced write happens, a transport used for
	// anything long-running must install a handler (SetErrHandler) or peer
	// failures after enqueue are invisible to the sender.
	errHandler atomic.Pointer[func(error)]

	// dialGate, if set, is consulted before dialing a node with no live
	// connection; false vetoes the dial. Membership installs it so drained
	// and dead peers are not redialed forever by retransmits (the backoff
	// loop for an exited process otherwise spins until the budget runs
	// out). Frames already connected keep flowing regardless.
	dialGate atomic.Pointer[func(node int) bool]

	// OnControl, if non-nil, receives control frames other than the
	// connection hello (e.g. coordinator shutdown announcements).
	OnControl func(*Frame)

	// DialAttempts bounds connection retries (exponential backoff, ~15s
	// total at the default of 10). Set lower to fail fast in tests.
	DialAttempts int

	// met carries the transport's metric handles. Every handle is nil-safe,
	// so an uninstrumented transport pays one branch per update. Installed
	// by ChainBuilder (or Instrument) before any connection exists.
	met tcpMetrics

	// everConnected tracks nodes a connection was ever established to, so
	// a later successful dial counts as a reconnect. Guarded by mu.
	everConnected map[int]bool
}

// tcpMetrics is the transport's handle set. The zero value (all nil) is a
// valid no-op.
type tcpMetrics struct {
	framesOut, framesIn *metrics.Counter
	bytesOut, bytesIn   *metrics.Counter
	stalls              *metrics.Counter // sender blocked on the coalescing buffer cap
	dials, reconnects   *metrics.Counter
	batchBytes          *metrics.Histogram // coalesced write sizes
}

// Instrument registers the transport's series on reg and installs the
// handles. Call before Listen or the first Send; ChainBuilder does this
// when built with metrics.
func (t *TCP) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	node := fmt.Sprint(t.self)
	l := metrics.L("node", node)
	t.met = tcpMetrics{
		framesOut:  reg.Counter("vmi_tcp_frames_out_total", l),
		framesIn:   reg.Counter("vmi_tcp_frames_in_total", l),
		bytesOut:   reg.Counter("vmi_tcp_bytes_out_total", l),
		bytesIn:    reg.Counter("vmi_tcp_bytes_in_total", l),
		stalls:     reg.Counter("vmi_tcp_backpressure_stalls_total", l),
		dials:      reg.Counter("vmi_tcp_dials_total", l),
		reconnects: reg.Counter("vmi_tcp_reconnects_total", l),
		batchBytes: reg.Histogram("vmi_tcp_write_batch_bytes", metrics.BytesBuckets, l),
	}
}

// ControlShutdown is the Dst marker of a coordinator's shutdown
// announcement control frame.
const ControlShutdown int32 = -2

// ControlMembership is the Dst marker of cluster-membership control
// frames (join requests, member-table broadcasts, drain notices); the
// body is a core membership wire message.
const ControlMembership int32 = -3

// ControlTelemetry is the Dst marker of telemetry reports: periodic
// metric deltas and trace-span digests a node's telemetry agent ships to
// the cluster collector; the body is a telemetry wire report. Telemetry
// frames ride the raw control path — deliberately below the Reliable
// layer, so a lossy link degrades the cluster view instead of competing
// with application retransmits; the collector tolerates gaps.
const ControlTelemetry int32 = -4

// maxPendingBytes bounds a connection's coalescing buffer; senders block
// (backpressure) until the writer drains below it.
const maxPendingBytes = 4 << 20

// closeFlushTimeout caps how long a closing connection's writer may spend
// flushing its remaining pending bytes to a possibly-dead peer.
const closeFlushTimeout = 2 * time.Second

// tcpConn is one direction-of-use connection with its write coalescer.
type tcpConn struct {
	c net.Conn

	mu      sync.Mutex
	hasData *sync.Cond // writer waits here for pending bytes
	drained *sync.Cond // backpressured senders wait here for the writer
	pending []byte     // frames encoded and awaiting the writer
	spare   []byte     // writer's swap buffer, recycled each drain
	closed  bool
	err     error // first write error, returned to later senders

	met tcpMetrics // owner transport's handles; zero value is a no-op
}

func newTCPConn(c net.Conn, met tcpMetrics) *tcpConn {
	tc := &tcpConn{c: c, met: met, pending: GetBuf(0)[:0], spare: GetBuf(0)[:0]}
	tc.hasData = sync.NewCond(&tc.mu)
	tc.drained = sync.NewCond(&tc.mu)
	return tc
}

// enqueue appends the frame's encoding to the pending buffer and wakes the
// writer if it was idle. The frame and its Body are fully copied, so the
// caller may reuse them on return.
func (tc *tcpConn) enqueue(f *Frame) error {
	tc.mu.Lock()
	if len(tc.pending) >= maxPendingBytes && !tc.closed {
		tc.met.stalls.Inc()
	}
	for len(tc.pending) >= maxPendingBytes && !tc.closed {
		tc.drained.Wait()
	}
	if tc.closed {
		err := tc.err
		tc.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return err
	}
	wasIdle := len(tc.pending) == 0
	before := len(tc.pending)
	tc.pending = f.AppendEncode(tc.pending)
	tc.met.framesOut.Inc()
	tc.met.bytesOut.Add(int64(len(tc.pending) - before))
	tc.mu.Unlock()
	if wasIdle {
		tc.hasData.Signal()
	}
	return nil
}

// enqueueRaw appends arbitrary bytes to the pending buffer, bypassing the
// frame encoder. It exists for fault injection: bytes that do not parse as
// a frame exercise the peer's reader-error path.
func (tc *tcpConn) enqueueRaw(b []byte) error {
	tc.mu.Lock()
	if tc.closed {
		err := tc.err
		tc.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return err
	}
	wasIdle := len(tc.pending) == 0
	tc.pending = append(tc.pending, b...)
	tc.mu.Unlock()
	if wasIdle {
		tc.hasData.Signal()
	}
	return nil
}

// shutdown marks the connection closed; the writer flushes what is already
// pending (bounded by closeFlushTimeout) and then closes the socket.
func (tc *tcpConn) shutdown() {
	tc.mu.Lock()
	tc.closed = true
	tc.c.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
	tc.mu.Unlock()
	tc.hasData.Signal()
	tc.drained.Broadcast()
}

// writeLoop drains the pending buffer. Each pass swaps the buffer out and
// writes it whole, so frames queued during a write coalesce into the next
// one; the socket goes idle only when the queue is empty.
func (tc *tcpConn) writeLoop(onErr func(error)) {
	tc.mu.Lock()
	for {
		for len(tc.pending) == 0 && !tc.closed {
			tc.hasData.Wait()
		}
		if len(tc.pending) == 0 { // closed and drained
			tc.mu.Unlock()
			tc.c.Close()
			return
		}
		buf := tc.pending
		tc.pending = tc.spare[:0]
		tc.mu.Unlock()

		tc.met.batchBytes.Observe(int64(len(buf)))
		_, err := tc.c.Write(buf)

		tc.mu.Lock()
		tc.spare = buf
		tc.drained.Broadcast()
		if err != nil {
			if tc.err == nil {
				tc.err = err
			}
			wasClosed := tc.closed
			tc.closed = true
			tc.mu.Unlock()
			tc.c.Close()
			tc.drained.Broadcast()
			if !wasClosed && onErr != nil {
				onErr(err)
			}
			return
		}
	}
}

// NewTCP builds a TCP transport for node self. addrs maps node ID to
// listen address; route maps a PE to its owning node; onRecv is the local
// receive chain entry for frames arriving from remote nodes.
func NewTCP(self int, addrs map[int]string, route func(pe int32) int, onRecv RecvFunc) *TCP {
	return &TCP{
		self:          self,
		addrs:         addrs,
		route:         route,
		onRecv:        onRecv,
		out:           make(map[int]*tcpConn),
		aux:           make(map[net.Conn]struct{}),
		done:          make(chan struct{}),
		everConnected: make(map[int]bool),
	}
}

// noteConnected records a (re-)established connection to node. Callers
// hold t.mu.
func (t *TCP) noteConnected(node int) {
	if t.everConnected[node] {
		t.met.reconnects.Inc()
	}
	t.everConnected[node] = true
}

// SetRecv replaces the terminal receive function for data frames arriving
// off the wire. It must be called before any connection is established;
// NewReliable uses it to interpose the reliability layer between the
// socket and the application's receive chain.
func (t *TCP) SetRecv(fn RecvFunc) { t.onRecv = fn }

// Listen starts accepting connections on this node's configured address.
// It returns the bound address (useful when the configured address has
// port 0).
func (t *TCP) Listen() (string, error) {
	addr, ok := t.addrs[t.self]
	if !ok {
		return "", fmt.Errorf("vmi: node %d has no configured address", t.self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("vmi: listen %s: %w", addr, err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address, or "" before Listen.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetAddr updates the known address for a node (used when nodes exchange
// dynamically bound ports during startup).
func (t *TCP) SetAddr(node int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[node] = addr
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

// hello is the first thing written on a dialed connection: a control frame
// whose Src carries the dialer's node ID.
func helloFrame(node int) *Frame {
	return &Frame{Class: ClassControl, Src: int32(node), Dst: -1}
}

// startWriter launches a connection's write coalescer under the transport's
// WaitGroup.
func (t *TCP) startWriter(tc *tcpConn) {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tc.writeLoop(func(err error) {
			if h := t.errh(); h != nil && !t.isClosed() {
				h(fmt.Errorf("vmi: tcp write: %w", err))
			}
			t.evict(tc.c)
		})
	}()
}

func (t *TCP) serveConn(c net.Conn) {
	defer t.wg.Done()
	fr := newFrameReader(c)
	defer fr.release()

	var hello Frame
	if err := fr.Next(&hello); err != nil || hello.Class != ClassControl {
		c.Close()
		return
	}
	peer := int(hello.Src)

	// Register the accepted connection as the outgoing path to the peer
	// unless one already exists.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return
	}
	if _, ok := t.out[peer]; !ok {
		tc := newTCPConn(c, t.met)
		t.out[peer] = tc
		t.noteConnected(peer)
		t.startWriter(tc)
	} else {
		t.aux[c] = struct{}{}
	}
	t.mu.Unlock()

	t.readLoop(fr, c)
	t.evict(c)
	t.mu.Lock()
	delete(t.aux, c)
	t.mu.Unlock()
}

// evict drops a dead connection from the outgoing table so the next send
// re-dials instead of writing into a closed socket.
func (t *TCP) evict(c net.Conn) {
	t.mu.Lock()
	var dead *tcpConn
	for node, tc := range t.out {
		if tc.c == c {
			dead = tc
			delete(t.out, node)
		}
	}
	t.mu.Unlock()
	if dead != nil {
		dead.shutdown()
	}
}

// DropConn severs the live connection to node the way a WAN fault would:
// the socket closes immediately (bytes sitting in the coalescing buffer
// are lost), the connection is evicted so the next send re-dials, and the
// error handler fires as it does for an asynchronous write failure.
// Without a reliability layer above, that fails the run; with one, the
// lost frames are retransmitted over a fresh connection. Reports whether a
// connection to node existed.
func (t *TCP) DropConn(node int) bool {
	t.mu.Lock()
	tc, ok := t.out[node]
	if ok {
		delete(t.out, node)
	}
	t.mu.Unlock()
	if !ok {
		return false
	}
	tc.c.Close() // hard close first: pending bytes are lost, not flushed
	tc.shutdown()
	if h := t.errh(); h != nil && !t.isClosed() {
		h(fmt.Errorf("vmi: connection to node %d dropped by fault injection", node))
	}
	return true
}

// CorruptWire injects garbage bytes into the outgoing byte stream to node,
// simulating wire-level corruption that breaks the VMI framing. The peer's
// reader fails on the bad magic and reports through its error handler.
func (t *TCP) CorruptWire(node int) error {
	tc, err := t.connTo(node)
	if err != nil {
		return err
	}
	return tc.enqueueRaw([]byte{0xDE, 0xAD, 0xBE, 0xEF, 'n', 'o', 'i', 's', 'e'})
}

// readLoop decodes frames off the connection and hands them up. Bodies are
// zero-copy views into the reader's block buffer, valid only during the
// delivery call.
func (t *TCP) readLoop(fr *frameReader, c net.Conn) {
	var f Frame
	for {
		if err := fr.Next(&f); err == nil {
			t.met.framesIn.Inc()
			t.met.bytesIn.Add(int64(f.EncodedLen()))
		} else {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !t.isClosed() {
				if h := t.errh(); h != nil {
					h(fmt.Errorf("vmi: tcp read: %w", err))
				}
			}
			c.Close()
			return
		}
		if f.Class == ClassControl {
			if h := t.OnControl; h != nil {
				// Control handlers may retain the frame; clone it off the
				// shared read buffer.
				h(f.Clone())
			}
			continue
		}
		if err := t.onRecv(&f); err != nil {
			if h := t.errh(); h != nil {
				h(fmt.Errorf("vmi: tcp deliver: %w", err))
			}
		}
	}
}

// SetErrHandler installs the asynchronous error handler.
//
// Deprecated: post-hoc handler installation is a construction-order trap
// (frames sent before the call report nowhere). Build the transport stack
// with vmi.NewChainBuilder and let core.NewRuntime bind its failure path
// through Stack.Bind, or set ReliableConfig.OnFail for a bare reliability
// layer. Retained for out-of-tree callers; no in-tree caller remains.
func (t *TCP) SetErrHandler(h func(error)) {
	t.setErrHandler(h)
}

// setErrHandler is the in-package installation path (the chain builder and
// the reliability layer wire handlers at construction).
func (t *TCP) setErrHandler(h func(error)) {
	t.errHandler.Store(&h)
}

// errh returns the installed error handler, or nil.
func (t *TCP) errh() func(error) {
	if p := t.errHandler.Load(); p != nil {
		return *p
	}
	return nil
}

// ErrDialGated marks a dial vetoed by the membership gate installed with
// SetDialGate (the target is drained or dead, not merely unreachable).
var ErrDialGated = errors.New("dial gated by membership")

// SetDialGate installs (or, with nil, removes) the membership dial gate;
// see the dialGate field. Safe to call at any time.
func (t *TCP) SetDialGate(fn func(node int) bool) {
	if fn == nil {
		t.dialGate.Store(nil)
		return
	}
	t.dialGate.Store(&fn)
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCP) connTo(node int) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, net.ErrClosed
	}
	if tc, ok := t.out[node]; ok {
		t.mu.Unlock()
		return tc, nil
	}
	addr, ok := t.addrs[node]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("vmi: no address for node %d", node)
	}
	if g := t.dialGate.Load(); g != nil && !(*g)(node) {
		return nil, fmt.Errorf("vmi: %w: node %d", ErrDialGated, node)
	}

	attempts := t.DialAttempts
	if attempts <= 0 {
		attempts = 10
	}
	c, err := dialRetry(addr, attempts, t.done)
	if err != nil {
		return nil, fmt.Errorf("vmi: dial node %d (%s): %w", node, addr, err)
	}
	t.met.dials.Inc()
	tc := newTCPConn(c, t.met)
	t.startWriter(tc)
	if err := tc.enqueue(helloFrame(t.self)); err != nil {
		tc.shutdown()
		return nil, err
	}

	t.mu.Lock()
	if prior, ok := t.out[node]; ok {
		// Lost a dial race; keep the registered one.
		t.mu.Unlock()
		tc.shutdown()
		return prior, nil
	}
	t.out[node] = tc
	t.noteConnected(node)
	t.mu.Unlock()

	// Frames may flow back on this dialed connection too.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		fr := newFrameReader(c)
		defer fr.release()
		t.readLoop(fr, c)
		t.evict(c)
	}()
	return tc, nil
}

// dialBackoff is the wait before retry attempt+1: 50ms doubling per
// attempt, capped at 2s.
func dialBackoff(attempt int) time.Duration {
	const base, max = 50 * time.Millisecond, 2 * time.Second
	if attempt >= 6 { // base<<6 > max; also keeps the shift in range
		return max
	}
	d := base << uint(attempt)
	if d > max {
		return max
	}
	return d
}

// dialRetry dials with exponential backoff so peers that start in any
// order still connect (a co-allocated job's processes rarely come up
// simultaneously). It gives up after ~15 seconds at the default attempt
// count, or immediately — even mid-backoff — when done closes, so a
// transport shutting down never sits out a sleep.
func dialRetry(addr string, attempts int, done <-chan struct{}) (net.Conn, error) {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		select {
		case <-done:
			return nil, net.ErrClosed
		default:
		}
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if attempt == attempts-1 {
			break // no point sleeping after the final failure
		}
		timer.Reset(dialBackoff(attempt))
		select {
		case <-timer.C:
		case <-done:
			timer.Stop()
			return nil, net.ErrClosed
		}
	}
	return nil, lastErr
}

// Send implements the terminal SendFunc of a wide-area send chain. The
// frame must carry a serialized Body (Obj is not transmitted). The body is
// copied into the connection's coalescing buffer before Send returns, so
// callers may recycle it; transport errors after that point are reported
// asynchronously through ErrHandler.
func (t *TCP) Send(f *Frame) error {
	if f.Body == nil && f.Obj != nil {
		return fmt.Errorf("vmi: tcp send of frame with unserialized payload: %v", f)
	}
	node := t.route(f.Dst)
	if node == t.self {
		// Self-node frames short-circuit into the local receive chain.
		return t.onRecv(f)
	}
	tc, err := t.connTo(node)
	if err != nil {
		return err
	}
	if err := tc.enqueue(f); err != nil {
		return fmt.Errorf("vmi: tcp send to node %d: %w", node, err)
	}
	return nil
}

// SendControl sends a control frame directly to a node (bypassing PE
// routing). Used by coordinators to announce shutdown.
func (t *TCP) SendControl(node int, f *Frame) error {
	f.Class = ClassControl
	if node == t.self {
		if h := t.OnControl; h != nil {
			h(f)
		}
		return nil
	}
	tc, err := t.connTo(node)
	if err != nil {
		return err
	}
	return tc.enqueue(f)
}

// Close shuts the listener and all connections down. Each connection's
// writer flushes frames already queued (bounded by closeFlushTimeout)
// before its socket closes, so shutdown announcements sent just before
// Close still reach their peers.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	conns := make([]*tcpConn, 0, len(t.out))
	for _, tc := range t.out {
		conns = append(conns, tc)
	}
	t.out = make(map[int]*tcpConn)
	raw := make([]net.Conn, 0, len(t.aux))
	for c := range t.aux {
		raw = append(raw, c)
	}
	t.aux = make(map[net.Conn]struct{})
	t.mu.Unlock()

	if t.ln != nil {
		t.ln.Close()
	}
	for _, tc := range conns {
		tc.shutdown()
	}
	// Unregistered accepted connections have no writer to flush; close
	// the sockets directly so their readLoops return.
	for _, c := range raw {
		c.Close()
	}
	t.wg.Wait()
	return nil
}

// encodeUint64 is a tiny helper shared by tests.
func encodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
