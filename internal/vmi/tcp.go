package vmi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is the wide-area (and general inter-process) terminal device: frames
// are serialized with the VMI framing and carried over TCP connections
// between nodes. A "node" is one OS process hosting a contiguous set of
// PEs; the route function maps a destination PE to its node ID.
//
// Connections are established lazily on first send and are reused in both
// directions: an accepted connection is also registered as the outgoing
// path to the peer that dialed in, so a pair of nodes shares one
// connection per direction of first use.
type TCP struct {
	self   int
	addrs  map[int]string
	route  func(pe int32) int
	onRecv RecvFunc

	ln net.Listener

	mu     sync.Mutex
	out    map[int]*tcpConn
	closed bool

	wg sync.WaitGroup

	// ErrHandler receives asynchronous reader errors; nil means ignore
	// (connection teardown during shutdown is normal).
	ErrHandler func(error)

	// OnControl, if non-nil, receives control frames other than the
	// connection hello (e.g. coordinator shutdown announcements).
	OnControl func(*Frame)

	// DialAttempts bounds connection retries (exponential backoff, ~15s
	// total at the default of 10). Set lower to fail fast in tests.
	DialAttempts int
}

// ControlShutdown is the Dst marker of a coordinator's shutdown
// announcement control frame.
const ControlShutdown int32 = -2

type tcpConn struct {
	c  net.Conn
	w  *bufio.Writer
	mu sync.Mutex // serializes writes
}

// NewTCP builds a TCP transport for node self. addrs maps node ID to
// listen address; route maps a PE to its owning node; onRecv is the local
// receive chain entry for frames arriving from remote nodes.
func NewTCP(self int, addrs map[int]string, route func(pe int32) int, onRecv RecvFunc) *TCP {
	return &TCP{
		self:   self,
		addrs:  addrs,
		route:  route,
		onRecv: onRecv,
		out:    make(map[int]*tcpConn),
	}
}

// Listen starts accepting connections on this node's configured address.
// It returns the bound address (useful when the configured address has
// port 0).
func (t *TCP) Listen() (string, error) {
	addr, ok := t.addrs[t.self]
	if !ok {
		return "", fmt.Errorf("vmi: node %d has no configured address", t.self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("vmi: listen %s: %w", addr, err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address, or "" before Listen.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetAddr updates the known address for a node (used when nodes exchange
// dynamically bound ports during startup).
func (t *TCP) SetAddr(node int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[node] = addr
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

// hello is the first thing written on a dialed connection: a control frame
// whose Src carries the dialer's node ID.
func helloFrame(node int) *Frame {
	return &Frame{Class: ClassControl, Src: int32(node), Dst: -1}
}

func (t *TCP) serveConn(c net.Conn) {
	defer t.wg.Done()
	br := bufio.NewReaderSize(c, 64<<10)

	var hello Frame
	if err := hello.DecodeFrom(br); err != nil || hello.Class != ClassControl {
		c.Close()
		return
	}
	peer := int(hello.Src)

	// Register the accepted connection as the outgoing path to the peer
	// unless one already exists.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return
	}
	if _, ok := t.out[peer]; !ok {
		t.out[peer] = &tcpConn{c: c, w: bufio.NewWriterSize(c, 64<<10)}
	}
	t.mu.Unlock()

	t.readLoop(br, c)
	t.evict(c)
}

// evict drops a dead connection from the outgoing table so the next send
// re-dials instead of writing into a closed socket.
func (t *TCP) evict(c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for node, tc := range t.out {
		if tc.c == c {
			delete(t.out, node)
		}
	}
}

func (t *TCP) readLoop(br *bufio.Reader, c net.Conn) {
	for {
		var f Frame
		if err := f.DecodeFrom(br); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !t.isClosed() {
				if h := t.ErrHandler; h != nil {
					h(fmt.Errorf("vmi: tcp read: %w", err))
				}
			}
			c.Close()
			return
		}
		if f.Class == ClassControl {
			if h := t.OnControl; h != nil {
				h(&f)
			}
			continue
		}
		if err := t.onRecv(&f); err != nil {
			if h := t.ErrHandler; h != nil {
				h(fmt.Errorf("vmi: tcp deliver: %w", err))
			}
		}
	}
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCP) connTo(node int) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, net.ErrClosed
	}
	if tc, ok := t.out[node]; ok {
		t.mu.Unlock()
		return tc, nil
	}
	addr, ok := t.addrs[node]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("vmi: no address for node %d", node)
	}

	attempts := t.DialAttempts
	if attempts <= 0 {
		attempts = 10
	}
	c, err := dialRetry(addr, attempts, t.isClosed)
	if err != nil {
		return nil, fmt.Errorf("vmi: dial node %d (%s): %w", node, addr, err)
	}
	tc := &tcpConn{c: c, w: bufio.NewWriterSize(c, 64<<10)}
	if err := t.writeFrame(tc, helloFrame(t.self)); err != nil {
		c.Close()
		return nil, err
	}

	t.mu.Lock()
	if prior, ok := t.out[node]; ok {
		// Lost a dial race; keep the registered one.
		t.mu.Unlock()
		c.Close()
		return prior, nil
	}
	t.out[node] = tc
	t.mu.Unlock()

	// Frames may flow back on this dialed connection too.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(bufio.NewReaderSize(c, 64<<10), c)
		t.evict(c)
	}()
	return tc, nil
}

// dialRetry dials with exponential backoff so peers that start in any
// order still connect (a co-allocated job's processes rarely come up
// simultaneously). It gives up after ~15 seconds or when the transport
// closes.
func dialRetry(addr string, attempts int, closed func() bool) (net.Conn, error) {
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if closed() {
			return nil, net.ErrClosed
		}
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			return c, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	return nil, lastErr
}

func (t *TCP) writeFrame(tc *tcpConn, f *Frame) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := f.EncodeTo(tc.w); err != nil {
		return err
	}
	return tc.w.Flush()
}

// Send implements the terminal SendFunc of a wide-area send chain. The
// frame must carry a serialized Body (Obj is not transmitted).
func (t *TCP) Send(f *Frame) error {
	if f.Body == nil && f.Obj != nil {
		return fmt.Errorf("vmi: tcp send of frame with unserialized payload: %v", f)
	}
	node := t.route(f.Dst)
	if node == t.self {
		// Self-node frames short-circuit into the local receive chain.
		return t.onRecv(f)
	}
	tc, err := t.connTo(node)
	if err != nil {
		return err
	}
	if err := t.writeFrame(tc, f); err != nil {
		return fmt.Errorf("vmi: tcp send to node %d: %w", node, err)
	}
	return nil
}

// SendControl sends a control frame directly to a node (bypassing PE
// routing). Used by coordinators to announce shutdown.
func (t *TCP) SendControl(node int, f *Frame) error {
	f.Class = ClassControl
	if node == t.self {
		if h := t.OnControl; h != nil {
			h(f)
		}
		return nil
	}
	tc, err := t.connTo(node)
	if err != nil {
		return err
	}
	return t.writeFrame(tc, f)
}

// Close shuts the listener and all connections down.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*tcpConn, 0, len(t.out))
	for _, tc := range t.out {
		conns = append(conns, tc)
	}
	t.out = make(map[int]*tcpConn)
	t.mu.Unlock()

	if t.ln != nil {
		t.ln.Close()
	}
	for _, tc := range conns {
		tc.c.Close()
	}
	t.wg.Wait()
	return nil
}

// encodeUint64 is a tiny helper shared by tests.
func encodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
