package vmi

import (
	"errors"
	"testing"
	"time"
)

func TestLoopbackDelivers(t *testing.T) {
	var got *Frame
	lb := NewLoopback(func(f *Frame) error { got = f; return nil })
	if lb.Name() == "" {
		t.Error("empty device name")
	}
	f := &Frame{Src: 1, Dst: 2}
	// Send never calls next.
	err := lb.Send(f, func(*Frame) error { return errors.New("next must not be called") })
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Error("frame not delivered")
	}
	// Terminal form is usable as a chain terminal.
	got = nil
	chain := BuildSendChain(lb.Terminal())
	if err := chain(f); err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Error("terminal did not deliver")
	}
}

func TestDeviceFuncAdaptersAndNames(t *testing.T) {
	var hits int
	sd := SendDeviceFunc{DeviceName: "s", Fn: func(f *Frame, next SendFunc) error { hits++; return next(f) }}
	rd := RecvDeviceFunc{DeviceName: "r", Fn: func(f *Frame, next RecvFunc) error { hits++; return next(f) }}
	if sd.Name() != "s" || rd.Name() != "r" {
		t.Error("adapter names wrong")
	}
	send := BuildSendChain(func(*Frame) error { return nil }, sd)
	recv := BuildRecvChain(func(*Frame) error { return nil }, rd)
	if err := send(&Frame{}); err != nil {
		t.Fatal(err)
	}
	if err := recv(&Frame{}); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Errorf("adapters hit %d times", hits)
	}
	// Exercise device names used in diagnostics.
	d := NewDelayDevice(func(int32, int32) time.Duration { return 0 })
	defer d.Close()
	for _, name := range []string{d.Name(), (&CompressDevice{}).Name(), ChecksumDevice{}.Name(), (&StripeDevice{}).Name(), NewStripeReassembler().Name(), NewPacerDevice(1).Name()} {
		if name == "" {
			t.Error("device with empty name")
		}
	}
}
