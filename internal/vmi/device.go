package vmi

import "fmt"

// SendFunc advances a frame toward delivery: either the next device in a
// send chain or the terminal delivery function.
type SendFunc func(*Frame) error

// RecvFunc advances a received frame toward the local scheduler: either
// the next device in a receive chain or the terminal enqueue function.
type RecvFunc func(*Frame) error

// SendDevice is one stage of a send chain. A device may deliver the frame
// itself (never calling next), transform it and pass it on, or hold it and
// call next later (the delay device does this).
type SendDevice interface {
	Name() string
	Send(f *Frame, next SendFunc) error
}

// RecvDevice is one stage of a receive chain, mirroring SendDevice.
type RecvDevice interface {
	Name() string
	Recv(f *Frame, next RecvFunc) error
}

// BuildSendChain composes devices into a single SendFunc. devs[0] sees the
// frame first; terminal runs last. A nil terminal yields an error sink so
// misconfigured chains fail loudly instead of dropping frames.
func BuildSendChain(terminal SendFunc, devs ...SendDevice) SendFunc {
	next := terminal
	if next == nil {
		next = func(f *Frame) error { return fmt.Errorf("vmi: send chain has no terminal for %v", f) }
	}
	for i := len(devs) - 1; i >= 0; i-- {
		dev, downstream := devs[i], next
		next = func(f *Frame) error { return dev.Send(f, downstream) }
	}
	return next
}

// BuildRecvChain composes devices into a single RecvFunc. devs[0] sees the
// frame first; terminal runs last.
func BuildRecvChain(terminal RecvFunc, devs ...RecvDevice) RecvFunc {
	next := terminal
	if next == nil {
		next = func(f *Frame) error { return fmt.Errorf("vmi: recv chain has no terminal for %v", f) }
	}
	for i := len(devs) - 1; i >= 0; i-- {
		dev, downstream := devs[i], next
		next = func(f *Frame) error { return dev.Recv(f, downstream) }
	}
	return next
}

// SendDeviceFunc adapts a function to the SendDevice interface.
type SendDeviceFunc struct {
	DeviceName string
	Fn         func(f *Frame, next SendFunc) error
}

// Name implements SendDevice.
func (d SendDeviceFunc) Name() string { return d.DeviceName }

// Send implements SendDevice.
func (d SendDeviceFunc) Send(f *Frame, next SendFunc) error { return d.Fn(f, next) }

// RecvDeviceFunc adapts a function to the RecvDevice interface.
type RecvDeviceFunc struct {
	DeviceName string
	Fn         func(f *Frame, next RecvFunc) error
}

// Name implements RecvDevice.
func (d RecvDeviceFunc) Name() string { return d.DeviceName }

// Recv implements RecvDevice.
func (d RecvDeviceFunc) Recv(f *Frame, next RecvFunc) error { return d.Fn(f, next) }
