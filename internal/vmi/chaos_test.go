package vmi

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// chaosSeed returns the seed for a chaos run: GRIDMDO_CHAOS_SEED when set
// (so a failure can be replayed exactly), else a fixed default. The seed is
// always logged so the failing schedule is reproducible.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("GRIDMDO_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("GRIDMDO_CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed: %d (set GRIDMDO_CHAOS_SEED=%d to replay)", seed, seed)
	return seed
}

// chaosPlan is the all-faults-at-once schedule used by the e2e chaos
// tests: drops, duplicates, reordering, corruption, and jitter together.
func chaosPlan() FaultPlan {
	return FaultPlan{
		Drop:      0.05,
		Duplicate: 0.05,
		Reorder:   0.05,
		Corrupt:   0.05,
		JitterMax: 2 * time.Millisecond,
	}
}

// TestChaosAllFaultsBothDirections: with every fault kind active on both
// send paths, the reliability layer still delivers every frame exactly
// once, in order, in both directions.
func TestChaosAllFaultsBothDirections(t *testing.T) {
	seed := chaosSeed(t)
	fd0 := NewFaultDevice(seed, chaosPlan())
	fd1 := NewFaultDevice(seed+1, chaosPlan())
	defer fd0.Close()
	defer fd1.Close()
	cfg := func(fd *FaultDevice) ReliableConfig {
		return ReliableConfig{RTO: 5 * time.Millisecond, SendFaults: []SendDevice{fd}}
	}
	p := newRelPair(t, cfg(fd0), cfg(fd1))

	n := 300
	if testing.Short() {
		n = 120
	}
	for i := 0; i < n; i++ {
		if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
		if err := p.r1.Send(&Frame{Src: 2, Dst: 0, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames both directions", func() bool {
		return len(p.at1()) == n && len(p.at0()) == n
	})
	assertInOrder(t, p.at1(), n)
	assertInOrder(t, p.at0(), n)
	waitFor(t, "windows drain", func() bool {
		return p.r0.Outstanding(1) == 0 && p.r1.Outstanding(0) == 0
	})
	t.Logf("faults injected 0→1: %+v", fd0.Stats())
	t.Logf("faults injected 1→0: %+v", fd1.Stats())
	t.Logf("repair stats node 0: %+v", p.r0.Stats())
	t.Logf("repair stats node 1: %+v", p.r1.Stats())
}

// TestChaosDropConnMidRun: forced TCP disconnects during an all-faults run
// are repaired by the retransmit path's transparent re-dial.
func TestChaosDropConnMidRun(t *testing.T) {
	seed := chaosSeed(t)
	fd := NewFaultDevice(seed, chaosPlan())
	defer fd.Close()
	p := newRelPair(t,
		ReliableConfig{RTO: 5 * time.Millisecond, SendFaults: []SendDevice{fd}},
		ReliableConfig{RTO: 5 * time.Millisecond})

	n := 300
	if testing.Short() {
		n = 120
	}
	for i := 0; i < n; i++ {
		if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
		if i == n/3 || i == 2*n/3 {
			// The connection may be mid-re-dial from the previous drop;
			// wait until there is a live one to sever.
			waitFor(t, "live connection to drop", func() bool { return p.t0.DropConn(1) })
		}
	}
	waitFor(t, "all frames across disconnects", func() bool { return len(p.at1()) == n })
	assertInOrder(t, p.at1(), n)
	waitFor(t, "window drain", func() bool { return p.r0.Outstanding(1) == 0 })
	if s := p.r0.Stats(); s.TransportErrs == 0 {
		t.Error("forced disconnects produced no absorbed transport errors")
	}
}

// TestChaosPartitionSeverHeal: a transient network partition loses every
// in-flight frame; after Heal the retransmit budget repairs the gap and
// delivery is still exactly-once, in-order.
func TestChaosPartitionSeverHeal(t *testing.T) {
	seed := chaosSeed(t)
	fd := NewFaultDevice(seed, FaultPlan{Drop: 0.05})
	defer fd.Close()
	wan := NewPartitionDevice(nil)
	p := newRelPair(t,
		ReliableConfig{RTO: 5 * time.Millisecond, SendFaults: []SendDevice{fd, wan}},
		ReliableConfig{RTO: 5 * time.Millisecond})

	n := 150
	if testing.Short() {
		n = 60
	}
	for i := 0; i < n; i++ {
		if i == n/3 {
			wan.Sever()
		}
		if i == n/2 {
			// Hold the partition across a few RTOs so retransmits are
			// swallowed too, then heal.
			time.Sleep(30 * time.Millisecond)
			wan.Heal()
		}
		if err := p.r0.Send(&Frame{Src: 0, Dst: 2, Body: []byte(fmt.Sprintf("msg-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames across partition", func() bool { return len(p.at1()) == n })
	assertInOrder(t, p.at1(), n)
	waitFor(t, "window drain", func() bool { return p.r0.Outstanding(1) == 0 })
	if wan.Dropped() == 0 {
		t.Error("partition swallowed no frames; sever window never covered traffic")
	}
}

// TestChaosSameSeedSameFaultSchedule: the e2e harness's fault schedule is
// replayable — two fault devices with the same seed, driven by the same
// deterministic frame sequence, make identical decisions. (The end-to-end
// runs above assert outcome invariants instead, because retransmissions
// interleave with first sends nondeterministically; this test pins down
// that the injected schedule itself is a pure function of the seed.)
func TestChaosSameSeedSameFaultSchedule(t *testing.T) {
	seed := chaosSeed(t)
	run := func() []FaultEvent {
		fd := NewFaultDevice(seed, chaosPlan())
		fd.RecordLog()
		chain := BuildSendChain(func(*Frame) error { return nil }, fd)
		for i := 0; i < 500; i++ {
			body := []byte(fmt.Sprintf("msg-%d", i))
			if err := chain(&Frame{Src: 0, Dst: 2, Seq: uint64(i), Body: body}); err != nil {
				t.Fatal(err)
			}
		}
		fd.Close()
		return fd.Log()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no fault events at chaos rates over 500 frames")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d (seed %d)", len(a), len(b), seed)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v (seed %d)", i, a[i], b[i], seed)
		}
	}
}
