package vmi

import (
	"math/rand"
	"sync"
	"time"
)

// Traffic-shaping devices for the real-time runtime: deterministic jitter
// around a base latency, and bandwidth pacing. The virtual-time executor
// models links analytically (see internal/topology.Link); these devices
// give the wall-clock pathway the same knobs.

// JitteredLatency wraps a latency function with seeded pseudo-random
// jitter: each frame's delay is drawn uniformly from
// [base·(1−frac), base·(1+frac)]. Zero base latencies stay zero, so
// intra-cluster traffic is unaffected. The returned function is safe for
// concurrent use and deterministic for a given seed and call sequence.
func JitteredLatency(base func(src, dst int32) time.Duration, frac float64, seed int64) func(src, dst int32) time.Duration {
	if frac < 0 {
		frac = 0
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(src, dst int32) time.Duration {
		b := base(src, dst)
		if b <= 0 || frac == 0 {
			return b
		}
		mu.Lock()
		u := rng.Float64()
		mu.Unlock()
		scale := 1 - frac + 2*frac*u
		return time.Duration(float64(b) * scale)
	}
}

// PacerDevice rate-limits a send chain: frames are released so that the
// long-run throughput does not exceed Rate bytes per second, modeling a
// bandwidth-constrained wide-area link. Frames shorter than the
// accounting minimum (the frame header) still pay for the header.
type PacerDevice struct {
	rate float64 // bytes per second

	mu       sync.Mutex
	nextFree time.Time

	d *DelayDevice
}

// NewPacerDevice builds a pacer releasing at most rate bytes per second.
func NewPacerDevice(rate float64) *PacerDevice {
	return &PacerDevice{
		rate: rate,
		d:    NewDelayDevice(func(int32, int32) time.Duration { return 0 }),
	}
}

// Name implements SendDevice.
func (p *PacerDevice) Name() string { return "pacer" }

// Send implements SendDevice.
func (p *PacerDevice) Send(f *Frame, next SendFunc) error {
	if p.rate <= 0 {
		return next(f)
	}
	bytes := f.EncodedLen()
	tx := time.Duration(float64(bytes) / p.rate * float64(time.Second))

	p.mu.Lock()
	now := time.Now()
	start := p.nextFree
	if start.Before(now) {
		start = now
	}
	p.nextFree = start.Add(tx)
	release := p.nextFree.Sub(now)
	p.mu.Unlock()

	return p.d.Hold(f, next, release)
}

// Pending reports frames held by the pacer.
func (p *PacerDevice) Pending() int { return p.d.Pending() }

// Close releases held frames and stops the pacer.
func (p *PacerDevice) Close() { p.d.Close() }
