package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// SVG rendering of regenerated figures: simple multi-series line charts,
// one per sub-plot, stacked vertically — enough to eyeball the paper's
// curve shapes without external tooling. The x axis is categorical over
// the swept latencies (the paper's sweeps are roughly geometric, so a
// categorical axis matches its visual spacing).

const (
	svgPlotW   = 560
	svgPlotH   = 260
	svgMarginL = 70
	svgMarginR = 150
	svgMarginT = 40
	svgMarginB = 45
)

var svgColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVG writes the figure as a standalone SVG document.
func (f *Figure) SVG(w io.Writer) error {
	n := len(f.Plots)
	if n == 0 {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>`)
		return err
	}
	totalW := svgMarginL + svgPlotW + svgMarginR
	totalH := n*(svgPlotH+svgMarginT+svgMarginB) + 30
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", totalW, totalH)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="15" font-weight="bold">%s</text>`+"\n", svgMarginL, svgEscape(f.Title))
	for i, sub := range f.Plots {
		top := 30 + i*(svgPlotH+svgMarginT+svgMarginB)
		renderSubPlot(&b, &sub, top)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func renderSubPlot(b *strings.Builder, sub *SubPlot, top int) {
	if len(sub.Series) == 0 || len(sub.Series[0].X) == 0 {
		return
	}
	x0 := svgMarginL
	y0 := top + svgMarginT
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="13">%s</text>`+"\n", x0, y0-10, svgEscape(sub.Title))

	// Y scale: 0 .. max over all series, padded.
	var maxY time.Duration
	for _, s := range sub.Series {
		for _, v := range s.Y {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	maxMs := ms(maxY) * 1.08

	nx := len(sub.Series[0].X)
	px := func(i int) float64 {
		if nx == 1 {
			return float64(x0)
		}
		return float64(x0) + float64(i)*float64(svgPlotW)/float64(nx-1)
	}
	py := func(v time.Duration) float64 {
		return float64(y0+svgPlotH) - ms(v)/maxMs*float64(svgPlotH)
	}

	// Frame and gridlines.
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`+"\n", x0, y0, svgPlotW, svgPlotH)
	for g := 1; g <= 4; g++ {
		gy := float64(y0+svgPlotH) - float64(g)*float64(svgPlotH)/5
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`+"\n", x0, gy, x0+svgPlotW, gy)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%.1f</text>`+"\n", x0-6, gy+3, float64(g)*maxMs/5)
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end">0</text>`+"\n", x0-6, y0+svgPlotH+3)
	// X tick labels.
	for i, lx := range sub.Series[0].X {
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(i), y0+svgPlotH+15, lx)
	}
	fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">one-way latency</text>`+"\n",
		float64(x0)+float64(svgPlotW)/2, y0+svgPlotH+32)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" transform="rotate(-90 %d %d)" text-anchor="middle">ms/step</text>`+"\n",
		x0-45, y0+svgPlotH/2, x0-45, y0+svgPlotH/2)

	// Series.
	for si, s := range sub.Series {
		color := svgColors[si%len(svgColors)]
		var pts []string
		for i, v := range s.Y {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(i), py(v)))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, v := range s.Y {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(i), py(v), color)
		}
		// Legend.
		ly := y0 + 14 + si*16
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			x0+svgPlotW+10, ly, x0+svgPlotW+30, ly, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", x0+svgPlotW+35, ly+4, svgEscape(s.Label))
	}
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
