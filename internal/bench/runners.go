package bench

import (
	"fmt"
	"math"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

func intSqrt(v int) (int, error) {
	r := int(math.Round(math.Sqrt(float64(v))))
	if r*r != v {
		return 0, fmt.Errorf("bench: virtualization degree %d is not a perfect square", v)
	}
	return r, nil
}

func buildTopo(procs int, lat time.Duration) (*topology.Topology, error) {
	if procs == 1 {
		return topology.Single(1)
	}
	return topology.TwoClusters(procs, lat)
}

func (c StencilConfig) params(objects int, model bool) (*stencil.Params, error) {
	v, err := intSqrt(objects)
	if err != nil {
		return nil, err
	}
	p := &stencil.Params{
		Width: c.Width, Height: c.Height,
		VX: v, VY: v,
		Steps: c.Steps, Warmup: c.Warmup,
	}
	if model {
		p.Model = c.Model
	}
	return p, nil
}

// StencilSim runs the stencil on the virtual-time engine with the
// Itanium-calibrated cost model ("artificial latency" instrument).
func StencilSim(cfg StencilConfig, procs, objects int, lat time.Duration, opts sim.Options) (*stencil.Result, error) {
	p, err := cfg.params(objects, true)
	if err != nil {
		return nil, err
	}
	prog, err := stencil.BuildProgram(p)
	if err != nil {
		return nil, err
	}
	topo, err := buildTopo(procs, lat)
	if err != nil {
		return nil, err
	}
	if opts.MaxEvents == 0 {
		opts.MaxEvents = 500_000_000
	}
	e, err := sim.New(topo, prog, opts)
	if err != nil {
		return nil, err
	}
	v, _, err := e.Run()
	if err != nil {
		return nil, err
	}
	return v.(*stencil.Result), nil
}

// StencilSimParams runs the stencil on the virtual-time engine from
// explicit stencil parameters (used by ablations that tweak placement or
// load balancing).
func StencilSimParams(p *stencil.Params, procs int, lat time.Duration) (*stencil.Result, error) {
	prog, err := stencil.BuildProgram(p)
	if err != nil {
		return nil, err
	}
	topo, err := buildTopo(procs, lat)
	if err != nil {
		return nil, err
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 500_000_000})
	if err != nil {
		return nil, err
	}
	v, _, err := e.Run()
	if err != nil {
		return nil, err
	}
	return v.(*stencil.Result), nil
}

// StencilRealtime runs the stencil on the real-time runtime in one
// process, with the delay device injecting the WAN latency (the paper's
// simulated-Grid environment, wall-clock measured).
func StencilRealtime(cfg StencilConfig, procs, objects int, lat time.Duration, opts ...core.Option) (*stencil.Result, error) {
	p, err := cfg.params(objects, false)
	if err != nil {
		return nil, err
	}
	prog, err := stencil.BuildProgram(p)
	if err != nil {
		return nil, err
	}
	topo, err := buildTopo(procs, lat)
	if err != nil {
		return nil, err
	}
	rt, err := core.NewRuntime(topo, prog, opts...)
	if err != nil {
		return nil, err
	}
	v, err := rt.Run()
	if err != nil {
		return nil, err
	}
	return v.(*stencil.Result), nil
}

// StencilTCP runs the stencil across two runtimes joined by real TCP
// sockets (one per cluster) with the delay device supplying the WAN
// flight time — the "real latency" validation pathway of Table 1.
func StencilTCP(cfg StencilConfig, procs, objects int, lat time.Duration, opts ...core.Option) (*stencil.Result, error) {
	mk := func() (*core.Program, error) {
		p, err := cfg.params(objects, false)
		if err != nil {
			return nil, err
		}
		return stencil.BuildProgram(p)
	}
	v, err := runTwoNodeTCP(procs, lat, mk, opts...)
	if err != nil {
		return nil, err
	}
	return v.(*stencil.Result), nil
}

// StencilTCPParams runs the stencil across the two TCP-joined runtimes
// from explicit stencil parameters — the two-process counterpart of
// StencilSimParams, used by experiments that tweak placement or load
// balancing and want real sockets under the migration traffic.
func StencilTCPParams(p *stencil.Params, procs int, lat time.Duration, opts ...core.Option) (*stencil.Result, error) {
	mk := func() (*core.Program, error) { return stencil.BuildProgram(p) }
	v, err := runTwoNodeTCP(procs, lat, mk, opts...)
	if err != nil {
		return nil, err
	}
	return v.(*stencil.Result), nil
}

func (c MDConfig) params(model bool) *leanmd.Params {
	p := leanmd.DefaultParams()
	p.NX, p.NY, p.NZ = c.NX, c.NY, c.NZ
	p.AtomsPerCell = c.AtomsPerCell
	p.Steps, p.Warmup = c.Steps, c.Warmup
	if model {
		p.Model = c.Model
	}
	return p
}

// LeanMDSim runs LeanMD on the virtual-time engine.
func LeanMDSim(cfg MDConfig, procs int, lat time.Duration, opts sim.Options) (*leanmd.Result, error) {
	prog, _, err := leanmd.BuildProgram(cfg.params(true))
	if err != nil {
		return nil, err
	}
	topo, err := buildTopo(procs, lat)
	if err != nil {
		return nil, err
	}
	if opts.MaxEvents == 0 {
		opts.MaxEvents = 500_000_000
	}
	e, err := sim.New(topo, prog, opts)
	if err != nil {
		return nil, err
	}
	v, _, err := e.Run()
	if err != nil {
		return nil, err
	}
	return v.(*leanmd.Result), nil
}

// LeanMDRealtime runs LeanMD on the real-time runtime in one process.
func LeanMDRealtime(cfg MDConfig, procs int, lat time.Duration, opts ...core.Option) (*leanmd.Result, error) {
	prog, _, err := leanmd.BuildProgram(cfg.params(false))
	if err != nil {
		return nil, err
	}
	topo, err := buildTopo(procs, lat)
	if err != nil {
		return nil, err
	}
	rt, err := core.NewRuntime(topo, prog, opts...)
	if err != nil {
		return nil, err
	}
	v, err := rt.Run()
	if err != nil {
		return nil, err
	}
	return v.(*leanmd.Result), nil
}

// LeanMDTCP runs LeanMD across two TCP-joined runtimes.
func LeanMDTCP(cfg MDConfig, procs int, lat time.Duration, opts ...core.Option) (*leanmd.Result, error) {
	mk := func() (*core.Program, error) {
		prog, _, err := leanmd.BuildProgram(cfg.params(false))
		return prog, err
	}
	v, err := runTwoNodeTCP(procs, lat, mk, opts...)
	if err != nil {
		return nil, err
	}
	return v.(*leanmd.Result), nil
}

// runTwoNodeTCP hosts a two-cluster machine as two Runtimes in this
// process, one per cluster, connected by the VMI TCP transport on
// loopback. The program's result is produced on node 0.
func runTwoNodeTCP(procs int, lat time.Duration, mkProg func() (*core.Program, error), opts ...core.Option) (any, error) {
	if procs < 2 || procs%2 != 0 {
		return nil, fmt.Errorf("bench: two-node TCP run needs an even PE count >= 2, got %d", procs)
	}
	topo, err := topology.TwoClusters(procs, lat)
	if err != nil {
		return nil, err
	}
	half := procs / 2
	nodeOf := func(pe int) int {
		if pe < half {
			return 0
		}
		return 1
	}
	routeFn := func(pe int32) int { return nodeOf(int(pe)) }

	// Peek at the assembled options so the transport stacks share the
	// harness registry (per-device series) with the runtimes (per-PE
	// series).
	var peek core.Options
	for _, o := range opts {
		o(&peek)
	}

	var rts [2]*core.Runtime
	var stacks [2]*vmi.Stack
	for node := 0; node < 2; node++ {
		s, err := vmi.NewChainBuilder(node, map[int]string{node: "127.0.0.1:0"}, routeFn).
			Metrics(peek.Metrics).
			Build()
		if err != nil {
			if node == 1 {
				stacks[0].Close()
			}
			return nil, err
		}
		stacks[node] = s
	}
	a0, err := stacks[0].Listen()
	if err != nil {
		return nil, err
	}
	a1, err := stacks[1].Listen()
	if err != nil {
		stacks[0].Close()
		return nil, err
	}
	stacks[0].SetAddr(1, a1)
	stacks[1].SetAddr(0, a0)
	defer stacks[0].Close()
	defer stacks[1].Close()

	for node := 0; node < 2; node++ {
		prog, err := mkProg()
		if err != nil {
			return nil, err
		}
		nodeOpts := append([]core.Option{
			core.WithCluster(core.ClusterConfig{Transport: stacks[node], NodeOf: nodeOf, Node: node, PELo: node * half, PEHi: (node + 1) * half}),
		}, opts...)
		rt, err := core.NewRuntime(topo, prog, nodeOpts...)
		if err != nil {
			return nil, err
		}
		rts[node] = rt
	}
	// One shared epoch: node 1's element construction would otherwise skew
	// its trace clock behind node 0's by the construction cost, corrupting
	// cross-node flight times in merged traces.
	epoch := time.Now()
	rts[0].SetEpoch(epoch)
	rts[1].SetEpoch(epoch)

	workerDone := make(chan error, 1)
	go func() {
		_, err := rts[1].Run()
		workerDone <- err
	}()
	v, err := rts[0].Run()
	rts[1].Stop()
	werr := <-workerDone
	if err != nil {
		return nil, err
	}
	if werr != nil {
		return nil, fmt.Errorf("bench: worker node failed: %w", werr)
	}
	return v, nil
}
