package bench

import (
	"fmt"
	"io"
	"time"

	"gridmdo/internal/balance"
	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/sim"
	"gridmdo/internal/stencil"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/topology"
	"gridmdo/internal/unstruct"
)

// Figure3 regenerates the paper's Figure 3: five-point stencil per-step
// time as a function of injected one-way latency, one sub-plot per
// processor count, one curve per virtualization degree.
func Figure3(w io.Writer, p Profile) (*Figure, error) {
	fig := &Figure{
		Title: fmt.Sprintf("Figure 3: %dx%d stencil, per-step time (ms) vs one-way latency", p.Stencil.Width, p.Stencil.Height),
		XName: "latency",
	}
	for _, procs := range figure4Procs() {
		sub := SubPlot{Title: fmt.Sprintf("%d processors (%d+%d)", procs, procs/2, procs/2)}
		for _, v := range figure3Virt(procs) {
			if v < procs {
				continue // fewer objects than PEs is not a meaningful run
			}
			s := Series{Label: fmt.Sprintf("%d objects", v)}
			for _, lat := range p.Fig3Latencies {
				res, err := StencilSim(p.Stencil, procs, v, lat, sim.Options{})
				if err != nil {
					return nil, fmt.Errorf("figure3 P=%d V=%d L=%v: %w", procs, v, lat, err)
				}
				s.X = append(s.X, lat)
				s.Y = append(s.Y, res.PerStep)
				progress(w, "figure3 P=%-2d V=%-4d L=%-5v  %8.3f ms/step\n", procs, v, lat, ms(res.PerStep))
			}
			sub.Series = append(sub.Series, s)
		}
		fig.Plots = append(fig.Plots, sub)
	}
	return fig, nil
}

// Figure4 regenerates the paper's Figure 4: LeanMD per-step time as a
// function of latency, one curve per processor count.
func Figure4(w io.Writer, p Profile) (*Figure, error) {
	fig := &Figure{
		Title: fmt.Sprintf("Figure 4: LeanMD (%d cells, %d cell-pairs), per-step time (ms) vs one-way latency",
			p.MD.NX*p.MD.NY*p.MD.NZ, pairCount(p.MD)),
		XName: "latency",
	}
	sub := SubPlot{Title: "all processor counts"}
	for _, procs := range figure4Procs() {
		s := Series{Label: fmt.Sprintf("%d processors", procs)}
		for _, lat := range p.Fig4Latencies {
			res, err := LeanMDSim(p.MD, procs, lat, sim.Options{})
			if err != nil {
				return nil, fmt.Errorf("figure4 P=%d L=%v: %w", procs, lat, err)
			}
			s.X = append(s.X, lat)
			s.Y = append(s.Y, res.PerStep)
			progress(w, "figure4 P=%-2d L=%-5v  %8.1f ms/step\n", procs, lat, ms(res.PerStep))
		}
		sub.Series = append(sub.Series, s)
	}
	fig.Plots = append(fig.Plots, sub)
	return fig, nil
}

// Table1 regenerates the paper's Table 1 comparison for the stencil:
// per-step times under "artificial latency" versus a "real" deployment.
// Three instruments are reported (DESIGN.md §5): the virtual-time engine
// at the TeraGrid latency (paper-scale artificial column), the real-time
// runtime with the in-process delay device, and the real-time runtime
// split over two OS-level TCP endpoints. The latter two are wall-clock on
// the host machine and validate each other the way the paper's two
// columns do.
func Table1(w io.Writer, p Profile, skipRealtime bool) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Table 1: stencil %dx%d at %.3f ms one-way latency (ms/step)",
			p.Stencil.Width, p.Stencil.Height, ms(p.RealLatency)),
		Header: []string{"Procs", "Objects", "Sim (Itanium model)", "Host delay-device", "Host TCP", "TCP/delay"},
	}
	for _, row := range table1Rows() {
		simTr, simFlush := p.traceSimRun(fmt.Sprintf("table1_sim_p%d_v%d", row.Procs, row.Objects), row.Procs)
		simRes, err := StencilSim(p.Stencil, row.Procs, row.Objects, p.RealLatency, sim.Options{Trace: simTr})
		if err != nil {
			return nil, fmt.Errorf("table1 sim P=%d V=%d: %w", row.Procs, row.Objects, err)
		}
		simFlush()
		cells := []string{
			fmt.Sprintf("%d", row.Procs),
			fmt.Sprintf("%d", row.Objects),
			fmt.Sprintf("%.3f", ms(simRes.PerStep)),
		}
		if skipRealtime {
			cells = append(cells, "-", "-", "-")
		} else {
			rtOpts, rtFlush := p.traceRun(fmt.Sprintf("table1_rt_p%d_v%d", row.Procs, row.Objects), row.Procs)
			rtRes, err := StencilRealtime(p.Stencil, row.Procs, row.Objects, p.RealLatency, rtOpts...)
			if err != nil {
				return nil, fmt.Errorf("table1 realtime P=%d V=%d: %w", row.Procs, row.Objects, err)
			}
			rtFlush()
			tcpOpts, tcpFlush := p.traceRun(fmt.Sprintf("table1_tcp_p%d_v%d", row.Procs, row.Objects), row.Procs)
			tcpRes, err := StencilTCP(p.Stencil, row.Procs, row.Objects, p.RealLatency, tcpOpts...)
			if err != nil {
				return nil, fmt.Errorf("table1 tcp P=%d V=%d: %w", row.Procs, row.Objects, err)
			}
			tcpFlush()
			ratio := float64(tcpRes.PerStep) / float64(rtRes.PerStep)
			cells = append(cells,
				fmt.Sprintf("%.3f", ms(rtRes.PerStep)),
				fmt.Sprintf("%.3f", ms(tcpRes.PerStep)),
				fmt.Sprintf("%.2f", ratio))
		}
		t.Rows = append(t.Rows, cells)
		progress(w, "table1 P=%-2d V=%-4d done\n", row.Procs, row.Objects)
	}
	return t, nil
}

// Table2 regenerates the paper's Table 2 for LeanMD, with the same three
// instruments as Table1.
func Table2(w io.Writer, p Profile, skipRealtime bool) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table 2: LeanMD at %.3f ms one-way latency (ms/step)", ms(p.RealLatency)),
		Header: []string{"Procs", "Sim (Itanium model)", "Host delay-device", "Host TCP", "TCP/delay"},
	}
	for _, procs := range figure4Procs() {
		simTr, simFlush := p.traceSimRun(fmt.Sprintf("table2_sim_p%d", procs), procs)
		simRes, err := LeanMDSim(p.MD, procs, p.RealLatency, sim.Options{Trace: simTr})
		if err != nil {
			return nil, fmt.Errorf("table2 sim P=%d: %w", procs, err)
		}
		simFlush()
		cells := []string{
			fmt.Sprintf("%d", procs),
			fmt.Sprintf("%.1f", ms(simRes.PerStep)),
		}
		if skipRealtime {
			cells = append(cells, "-", "-", "-")
		} else {
			rtOpts, rtFlush := p.traceRun(fmt.Sprintf("table2_rt_p%d", procs), procs)
			rtRes, err := LeanMDRealtime(p.MD, procs, p.RealLatency, rtOpts...)
			if err != nil {
				return nil, fmt.Errorf("table2 realtime P=%d: %w", procs, err)
			}
			rtFlush()
			tcpOpts, tcpFlush := p.traceRun(fmt.Sprintf("table2_tcp_p%d", procs), procs)
			tcpRes, err := LeanMDTCP(p.MD, procs, p.RealLatency, tcpOpts...)
			if err != nil {
				return nil, fmt.Errorf("table2 tcp P=%d: %w", procs, err)
			}
			tcpFlush()
			ratio := float64(tcpRes.PerStep) / float64(rtRes.PerStep)
			cells = append(cells,
				fmt.Sprintf("%.3f", ms(rtRes.PerStep)),
				fmt.Sprintf("%.3f", ms(tcpRes.PerStep)),
				fmt.Sprintf("%.2f", ratio))
		}
		t.Rows = append(t.Rows, cells)
		progress(w, "table2 P=%-2d done\n", procs)
	}
	return t, nil
}

// AblationPriority measures the paper's §6 proposal — prioritizing
// cross-cluster messages — on a stencil configuration near its latency
// knee.
func AblationPriority(w io.Writer, p Profile) (*Table, error) {
	t := &Table{
		Title:  "Ablation: WAN message prioritization (stencil, ms/step)",
		Header: []string{"Procs", "Objects", "Latency", "FIFO", "WAN-prioritized", "speedup"},
	}
	for _, cfg := range []struct {
		procs, objects int
		lat            time.Duration
	}{
		{8, 64, 8 * time.Millisecond},
		{16, 256, 8 * time.Millisecond},
		{16, 256, 16 * time.Millisecond},
	} {
		off, err := StencilSim(p.Stencil, cfg.procs, cfg.objects, cfg.lat, sim.Options{})
		if err != nil {
			return nil, err
		}
		on, err := StencilSim(p.Stencil, cfg.procs, cfg.objects, cfg.lat, sim.Options{PrioritizeWAN: true})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cfg.procs),
			fmt.Sprintf("%d", cfg.objects),
			cfg.lat.String(),
			fmt.Sprintf("%.3f", ms(off.PerStep)),
			fmt.Sprintf("%.3f", ms(on.PerStep)),
			fmt.Sprintf("%.3f", float64(off.PerStep)/float64(on.PerStep)),
		})
		progress(w, "ablation-prio P=%d V=%d L=%v done\n", cfg.procs, cfg.objects, cfg.lat)
	}
	return t, nil
}

// AblationGridLB compares load-balancing strategies on a stencil whose
// blocks start squeezed onto half of each cluster's PEs (a 2× load
// imbalance with good communication locality): none, the
// cluster-oblivious Greedy, and the paper's grid-aware balancer (which
// never migrates across the WAN).
func AblationGridLB(w io.Writer, p Profile) (*Table, error) {
	t := &Table{
		Title:  "Ablation: one LB round from a half-empty placement (stencil, ms/step)",
		Header: []string{"Procs", "Objects", "Latency", "none", "greedy", "grid"},
	}
	const procs, objects = 8, 256
	lat := 8 * time.Millisecond

	run := func(strategy core.Strategy) (time.Duration, error) {
		sp, err := p.Stencil.params(objects, true)
		if err != nil {
			return 0, err
		}
		// Keep the locality-preserving column mapping but use only every
		// other PE, leaving half of each cluster idle.
		sp.InitialMap = func(i, numPE int) int {
			pe := core.BlockMap(i, objects, numPE)
			half := numPE / 2
			if pe < half {
				return pe / 2
			}
			return half + (pe-half)/2
		}
		if strategy != nil {
			sp.LB = strategy
			sp.LBAtStep = 2
			// Time only the post-balance phase.
			if sp.Warmup <= 2 {
				sp.Warmup = 3
			}
		}
		res, err := StencilSimParams(sp, procs, lat)
		if err != nil {
			return 0, err
		}
		return res.PerStep, nil
	}
	none, err := run(nil)
	if err != nil {
		return nil, err
	}
	greedy, err := run(balance.Greedy{})
	if err != nil {
		return nil, err
	}
	grid, err := run(balance.Grid{})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d", procs), fmt.Sprintf("%d", objects), lat.String(),
		fmt.Sprintf("%.3f", ms(none)),
		fmt.Sprintf("%.3f", ms(greedy)),
		fmt.Sprintf("%.3f", ms(grid)),
	})
	progress(w, "ablation-gridlb done\n")
	return t, nil
}

// GridLBTCP is the two-process companion of AblationGridLB: the same
// half-empty placement (each cluster's blocks squeezed onto half its
// PEs), but hosted as two runtimes joined by real TCP sockets with the
// delay device supplying the WAN flight time, wall-clock measured. The
// balancing round itself runs over the wire — stats, evict/arrive PUP
// payloads, and resume all ride KindLB messages through the Reliable/TCP
// chain — so the table shows measurement-based balancing working in the
// actual N-process deployment, not just the virtual-time model.
func GridLBTCP(w io.Writer, p Profile) (*Table, error) {
	t := &Table{
		Title:  "Grid LB across two processes (stencil over real TCP, ms/step)",
		Header: []string{"Procs", "Objects", "Latency", "none", "grid"},
	}
	const procs, objects = 4, 64
	lat := 3 * time.Millisecond

	run := func(strategy core.Strategy) (time.Duration, error) {
		sp, err := p.Stencil.params(objects, false)
		if err != nil {
			return 0, err
		}
		// Same squeeze as AblationGridLB: locality-preserving columns, but
		// only every other PE, leaving half of each cluster idle.
		sp.InitialMap = func(i, numPE int) int {
			pe := core.BlockMap(i, objects, numPE)
			half := numPE / 2
			if pe < half {
				return pe / 2
			}
			return half + (pe-half)/2
		}
		if strategy != nil {
			sp.LB = strategy
			sp.LBAtStep = 2
			// Time only the post-balance phase.
			if sp.Warmup <= 2 {
				sp.Warmup = 3
			}
		}
		res, err := StencilTCPParams(sp, procs, lat, p.rtOpts()...)
		if err != nil {
			return 0, err
		}
		return res.PerStep, nil
	}
	none, err := run(nil)
	if err != nil {
		return nil, err
	}
	grid, err := run(balance.Grid{})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d", procs), fmt.Sprintf("%d", objects), lat.String(),
		fmt.Sprintf("%.3f", ms(none)),
		fmt.Sprintf("%.3f", ms(grid)),
	})
	progress(w, "gridlb-tcp done\n")
	return t, nil
}

// AblationHetero runs the stencil on a heterogeneous co-allocation —
// cluster 1's processors at half speed, as when one site's hardware is a
// generation older — and compares balancing strategies. The grid-aware
// balancer refuses to migrate across the WAN by design, so it can only
// even out load within each cluster; Greedy may trade WAN communication
// for load balance.
func AblationHetero(w io.Writer, p Profile) (*Table, error) {
	t := &Table{
		Title:  "Ablation: heterogeneous clusters (cluster 1 at 0.5x speed; stencil, ms/step)",
		Header: []string{"Procs", "Objects", "Latency", "none", "greedy", "grid"},
	}
	const procs, objects = 8, 256
	lat := 8 * time.Millisecond

	run := func(strategy core.Strategy) (time.Duration, error) {
		sp, err := p.Stencil.params(objects, true)
		if err != nil {
			return 0, err
		}
		if strategy != nil {
			sp.LB = strategy
			sp.LBAtStep = 2
			if sp.Warmup <= 2 {
				sp.Warmup = 3
			}
		}
		prog, err := stencil.BuildProgram(sp)
		if err != nil {
			return 0, err
		}
		topo, err := topology.TwoClusters(procs, lat)
		if err != nil {
			return 0, err
		}
		if err := topo.SetClusterSpeed(1, 0.5); err != nil {
			return 0, err
		}
		e, err := sim.New(topo, prog, sim.Options{MaxEvents: 500_000_000})
		if err != nil {
			return 0, err
		}
		v, _, err := e.Run()
		if err != nil {
			return 0, err
		}
		return v.(*stencil.Result).PerStep, nil
	}
	none, err := run(nil)
	if err != nil {
		return nil, err
	}
	greedy, err := run(balance.Greedy{})
	if err != nil {
		return nil, err
	}
	grid, err := run(balance.Grid{})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d", procs), fmt.Sprintf("%d", objects), lat.String(),
		fmt.Sprintf("%.3f", ms(none)),
		fmt.Sprintf("%.3f", ms(greedy)),
		fmt.Sprintf("%.3f", ms(grid)),
	})
	progress(w, "ablation-hetero done\n")
	return t, nil
}

// AblationBundling measures the communication-optimization analog
// (core/bundle.go) on LeanMD, the multicast-heavy application: transport
// frames per run and per-step time, with per-message sender CPU made
// explicit in the link model so the serialized messaging cost bundling
// amortizes is visible.
func AblationBundling(w io.Writer, p Profile) (*Table, error) {
	t := &Table{
		Title:  "Ablation: message bundling (LeanMD, per-message sender CPU 5/25us)",
		Header: []string{"Procs", "Frames (off)", "Frames (on)", "ms/step (off)", "ms/step (on)"},
	}
	for _, procs := range []int{8, 16} {
		run := func(bundle bool) (*leanmd.Result, sim.Stats, error) {
			lp := p.MD.params(true)
			prog, _, err := leanmd.BuildProgram(lp)
			if err != nil {
				return nil, sim.Stats{}, err
			}
			topo, err := topology.TwoClusters(procs, p.RealLatency,
				topology.WithIntraLink(topology.Link{
					Overhead: topology.DefaultIntraOverhead, Bandwidth: topology.DefaultIntraBandwidth,
					SendCPU: 5 * time.Microsecond,
				}),
				topology.WithInterLink(topology.Link{
					Latency:  p.RealLatency,
					Overhead: topology.DefaultInterOverhead, Bandwidth: topology.DefaultInterBandwidth,
					SendCPU: 25 * time.Microsecond,
				}),
			)
			if err != nil {
				return nil, sim.Stats{}, err
			}
			e, err := sim.New(topo, prog, sim.Options{Bundle: bundle, MaxEvents: 500_000_000})
			if err != nil {
				return nil, sim.Stats{}, err
			}
			v, _, err := e.Run()
			if err != nil {
				return nil, sim.Stats{}, err
			}
			return v.(*leanmd.Result), e.Stats(), nil
		}
		off, so, err := run(false)
		if err != nil {
			return nil, err
		}
		on, sn, err := run(true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", procs),
			fmt.Sprintf("%d", so.Frames),
			fmt.Sprintf("%d", sn.Frames),
			fmt.Sprintf("%.1f", ms(off.PerStep)),
			fmt.Sprintf("%.1f", ms(on.PerStep)),
		})
		progress(w, "ablation-bundle P=%d done\n", procs)
	}
	return t, nil
}

// Irregular demonstrates the paper's generality claim on an irregular
// mesh decomposition: the same runtime masks latency with no
// application-specific support, and higher virtualization extends the
// flat region, exactly as for the regular stencil.
func Irregular(w io.Writer, p Profile) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Generality: irregular-mesh relaxation, %d vertices on 8 processors (ms/step)", p.IrregularVertices),
		Header: []string{"Latency", "8 chunks", "64 chunks", "256 chunks"},
	}
	const procs = 8
	run := func(chunks int, lat time.Duration) (time.Duration, error) {
		up := &unstruct.Params{
			Vertices: p.IrregularVertices, Degree: 6, Seed: 17,
			Chunks: chunks, Steps: 16, Warmup: 5,
			Model: unstruct.DefaultModel(),
		}
		prog, err := unstruct.BuildProgram(up)
		if err != nil {
			return 0, err
		}
		topo, err := buildTopo(procs, lat)
		if err != nil {
			return 0, err
		}
		e, err := sim.New(topo, prog, sim.Options{MaxEvents: 200_000_000})
		if err != nil {
			return 0, err
		}
		v, _, err := e.Run()
		if err != nil {
			return 0, err
		}
		return v.(*unstruct.Result).PerStep, nil
	}
	for _, lat := range []time.Duration{0, time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond} {
		row := []string{lat.String()}
		for _, chunks := range []int{8, 64, 256} {
			v, err := run(chunks, lat)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", ms(v)))
		}
		t.Rows = append(t.Rows, row)
		progress(w, "irregular L=%v done\n", lat)
	}
	return t, nil
}

// SDSC runs the paper's §6 first future-work item: the same applications
// at the NCSA–SDSC one-way latency of 29.37 ms. The paper predicts that
// "example codes such as the five-point stencil running over a 2048x2048
// mesh will experience severe performance penalties" while codes "with
// larger per-step execution times should be able to run successfully".
func SDSC(w io.Writer, p Profile) (*Table, error) {
	const sdscLatency = 29370 * time.Microsecond
	t := &Table{
		Title:  "Future-work validation: NCSA-SDSC latency (29.37 ms one-way), ms/step",
		Header: []string{"Application", "Procs", "@1.725ms", "@29.37ms", "penalty"},
	}
	type cfg struct {
		name  string
		procs int
		run   func(lat time.Duration) (time.Duration, error)
	}
	var rows []cfg
	for _, procs := range []int{8, 32} {
		procs := procs
		rows = append(rows,
			cfg{"stencil V=256", procs, func(lat time.Duration) (time.Duration, error) {
				r, err := StencilSim(p.Stencil, procs, 256, lat, sim.Options{})
				if err != nil {
					return 0, err
				}
				return r.PerStep, nil
			}},
			cfg{"LeanMD", procs, func(lat time.Duration) (time.Duration, error) {
				r, err := LeanMDSim(p.MD, procs, lat, sim.Options{})
				if err != nil {
					return 0, err
				}
				return r.PerStep, nil
			}},
		)
	}
	for _, c := range rows {
		near, err := c.run(p.RealLatency)
		if err != nil {
			return nil, err
		}
		far, err := c.run(sdscLatency)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprintf("%d", c.procs),
			fmt.Sprintf("%.3f", ms(near)),
			fmt.Sprintf("%.3f", ms(far)),
			fmt.Sprintf("%.2fx", float64(far)/float64(near)),
		})
		progress(w, "sdsc %s P=%d done\n", c.name, c.procs)
	}
	return t, nil
}

// Classes quantifies the paper's §1 taxonomy: how each application class
// responds to wide-area latency. For each latency the table reports the
// slowdown relative to that class's own zero-latency time — the
// master-worker farm (coarse tasks, prefetch 4) should barely move, while
// the tightly-coupled applications bend once latency passes their
// overlappable work.
func Classes(w io.Writer, p Profile) (*Table, error) {
	t := &Table{
		Title:  "Application classes: slowdown vs own zero-latency baseline (8 processors)",
		Header: []string{"Latency", "stencil (V=64)", "LeanMD", "task farm"},
	}
	const procs = 8

	stencilAt := func(lat time.Duration) (time.Duration, error) {
		res, err := StencilSim(p.Stencil, procs, 64, lat, sim.Options{})
		if err != nil {
			return 0, err
		}
		return res.PerStep, nil
	}
	mdAt := func(lat time.Duration) (time.Duration, error) {
		res, err := LeanMDSim(p.MD, procs, lat, sim.Options{})
		if err != nil {
			return 0, err
		}
		return res.PerStep, nil
	}
	farmAt := func(lat time.Duration) (time.Duration, error) {
		prog, err := taskfarm.BuildProgramFor(&taskfarm.Params{
			Tasks: 200, Prefetch: 4, TaskCost: 50 * time.Millisecond, TaskBytes: 2048,
		}, procs)
		if err != nil {
			return 0, err
		}
		topo, err := buildTopo(procs, lat)
		if err != nil {
			return 0, err
		}
		e, err := sim.New(topo, prog, sim.Options{MaxEvents: 100_000_000})
		if err != nil {
			return 0, err
		}
		v, _, err := e.Run()
		if err != nil {
			return 0, err
		}
		return v.(*taskfarm.Result).Makespan, nil
	}

	base := make([]time.Duration, 3)
	for i, f := range []func(time.Duration) (time.Duration, error){stencilAt, mdAt, farmAt} {
		b, err := f(0)
		if err != nil {
			return nil, err
		}
		base[i] = b
	}
	for _, lat := range []time.Duration{time.Millisecond, 16 * time.Millisecond, 64 * time.Millisecond, 256 * time.Millisecond} {
		row := []string{lat.String()}
		for i, f := range []func(time.Duration) (time.Duration, error){stencilAt, mdAt, farmAt} {
			v, err := f(lat)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2fx", float64(v)/float64(base[i])))
		}
		t.Rows = append(t.Rows, row)
		progress(w, "classes L=%v done\n", lat)
	}
	return t, nil
}

// AblationVirtualization quantifies the pure overhead/benefit of the
// virtualization degree at zero latency (the §5.2 cache observation plus
// scheduling overhead at extreme degrees).
func AblationVirtualization(w io.Writer, p Profile) (*Table, error) {
	t := &Table{
		Title:  "Ablation: virtualization degree at zero latency (stencil, ms/step)",
		Header: []string{"Procs", "Objects", "ms/step"},
	}
	const procs = 8
	for _, v := range []int{16, 64, 256, 1024, 4096} {
		if v > p.Stencil.Width*p.Stencil.Height/64 {
			continue
		}
		res, err := StencilSim(p.Stencil, procs, v, 0, sim.Options{})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", procs), fmt.Sprintf("%d", v),
			fmt.Sprintf("%.3f", ms(res.PerStep)),
		})
		progress(w, "ablation-virt V=%d done\n", v)
	}
	return t, nil
}

func pairCount(m MDConfig) int {
	nc := m.NX * m.NY * m.NZ
	// Periodic 26-neighbor pairs + self pairs (exact only when every axis
	// has >= 3 cells; the paper's 6×6×6 qualifies).
	return nc*26/2 + nc
}

func progress(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
