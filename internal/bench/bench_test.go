package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"gridmdo/internal/sim"
)

func TestIntSqrt(t *testing.T) {
	for _, v := range []int{4, 16, 64, 256, 1024} {
		r, err := intSqrt(v)
		if err != nil || r*r != v {
			t.Errorf("intSqrt(%d) = %d, %v", v, r, err)
		}
	}
	if _, err := intSqrt(5); err == nil {
		t.Error("intSqrt(5) accepted")
	}
}

func TestTable1RowsMatchPaper(t *testing.T) {
	rows := table1Rows()
	if len(rows) != 18 {
		t.Fatalf("Table 1 has %d rows, want 18", len(rows))
	}
	for _, r := range rows {
		if r.Objects < r.Procs {
			t.Errorf("row %+v has fewer objects than processors", r)
		}
	}
}

func TestFigure3FastShape(t *testing.T) {
	p := FastProfile()
	var progress bytes.Buffer
	fig, err := Figure3(&progress, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Plots) != 6 {
		t.Fatalf("figure 3 has %d sub-plots, want 6", len(fig.Plots))
	}
	for _, sub := range fig.Plots {
		for _, s := range sub.Series {
			if len(s.X) != len(p.Fig3Latencies) {
				t.Fatalf("%s/%s has %d points", sub.Title, s.Label, len(s.X))
			}
			// Per-step time is (approximately) non-decreasing in latency.
			for i := 1; i < len(s.Y); i++ {
				if float64(s.Y[i]) < 0.95*float64(s.Y[i-1]) {
					t.Errorf("%s/%s: per-step decreased with latency: %v -> %v",
						sub.Title, s.Label, s.Y[i-1], s.Y[i])
				}
			}
		}
		// Paper's headline: at the largest latency, the most-virtualized
		// curve is no slower than the least-virtualized one.
		if len(sub.Series) >= 2 {
			lo := sub.Series[0]
			hi := sub.Series[len(sub.Series)-1]
			last := len(lo.Y) - 1
			if float64(hi.Y[last]) > 1.1*float64(lo.Y[last]) {
				t.Errorf("%s: high virtualization worse at max latency: %v vs %v",
					sub.Title, hi.Y[last], lo.Y[last])
			}
		}
	}
	var out bytes.Buffer
	fig.Render(&out)
	if !strings.Contains(out.String(), "Figure 3") {
		t.Error("render missing title")
	}
	var csv bytes.Buffer
	fig.CSV(&csv)
	if lines := strings.Count(csv.String(), "\n"); lines < 10 {
		t.Errorf("CSV has only %d lines", lines)
	}
	var svg bytes.Buffer
	if err := fig.SVG(&svg); err != nil {
		t.Fatal(err)
	}
	s := svg.String()
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "polyline") {
		t.Error("SVG render missing structure")
	}
	for _, sub := range fig.Plots {
		for _, series := range sub.Series {
			if !strings.Contains(s, series.Label) {
				t.Errorf("SVG missing legend entry %q", series.Label)
			}
		}
	}
	// Degenerate figure renders something valid too.
	var empty bytes.Buffer
	if err := (&Figure{}).SVG(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "<svg") {
		t.Error("empty figure SVG invalid")
	}
}

func TestFigure4FastShape(t *testing.T) {
	p := FastProfile()
	fig, err := Figure4(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	series := fig.Plots[0].Series
	if len(series) != 6 {
		t.Fatalf("%d series, want 6", len(series))
	}
	// Scaling at the lowest latency: more processors, faster steps
	// (through 32 PEs; the paper sees stagnation at 64).
	for i := 1; i < 5; i++ {
		if series[i].Y[0] >= series[i-1].Y[0] {
			t.Errorf("no speedup from %s to %s: %v vs %v",
				series[i-1].Label, series[i].Label, series[i-1].Y[0], series[i].Y[0])
		}
	}
	// Latency impact: on 2 PEs, 256ms barely matters relative to the
	// ~4s step; each curve is non-decreasing.
	two := series[0]
	if ratio := float64(two.Y[len(two.Y)-1]) / float64(two.Y[0]); ratio > 1.35 {
		t.Errorf("2-PE step time grew %.2fx across the sweep; paper sees almost no impact", ratio)
	}
	for _, s := range series {
		for i := 1; i < len(s.Y); i++ {
			if float64(s.Y[i]) < 0.95*float64(s.Y[i-1]) {
				t.Errorf("%s: per-step decreased with latency", s.Label)
			}
		}
	}
}

func TestTable1FastWithRealtime(t *testing.T) {
	if testing.Short() {
		t.Skip("realtime columns are wall-clock heavy")
	}
	p := FastProfile()
	// Shrink further: the structure matters here, not the absolute scale.
	p.Stencil.Width, p.Stencil.Height = 256, 256
	p.Stencil.Steps, p.Stencil.Warmup = 6, 2
	tbl, err := Table1(nil, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 18 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
		for _, c := range row {
			if c == "" {
				t.Fatalf("empty cell in %v", row)
			}
		}
	}
	var out bytes.Buffer
	tbl.Render(&out)
	tbl.CSV(&out)
	if out.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTable2FastWithRealtime(t *testing.T) {
	if testing.Short() {
		t.Skip("realtime columns are wall-clock heavy")
	}
	p := FastProfile()
	tbl, err := Table2(nil, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestAblations(t *testing.T) {
	p := FastProfile()
	prio, err := AblationPriority(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(prio.Rows) != 3 {
		t.Errorf("priority ablation rows = %d", len(prio.Rows))
	}
	lb, err := AblationGridLB(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Rows) != 1 {
		t.Errorf("gridlb ablation rows = %d", len(lb.Rows))
	}
	virt, err := AblationVirtualization(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(virt.Rows) < 3 {
		t.Errorf("virtualization ablation rows = %d", len(virt.Rows))
	}
	het, err := AblationHetero(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(het.Rows) != 1 {
		t.Errorf("hetero ablation rows = %d", len(het.Rows))
	}
	// With cluster 1 at half speed and no balancing, steps are gated by
	// the slow cluster; any balancing should not be slower than none.
	var vals [3]float64
	for i := 0; i < 3; i++ {
		fmt.Sscanf(het.Rows[0][3+i], "%f", &vals[i])
	}
	if vals[1] > vals[0]*1.15 {
		t.Errorf("greedy (%v) much worse than none (%v) on heterogeneous clusters", vals[1], vals[0])
	}

	bun, err := AblationBundling(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range bun.Rows {
		var off, on int
		fmt.Sscanf(row[1], "%d", &off)
		fmt.Sscanf(row[2], "%d", &on)
		if on >= off {
			t.Errorf("bundling row %v: frames did not drop", row)
		}
	}
}

func TestSDSCPrediction(t *testing.T) {
	p := FastProfile()
	tbl, err := SDSC(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("sdsc rows = %d", len(tbl.Rows))
	}
	// The paper's §6 prediction: stencil penalized, LeanMD fine. Rows
	// alternate stencil/LeanMD.
	for i, row := range tbl.Rows {
		var penalty float64
		fmt.Sscanf(row[4], "%fx", &penalty)
		if i%2 == 0 { // stencil
			if penalty < 1.3 {
				t.Errorf("stencil row %v: penalty %.2f, expected severe", row, penalty)
			}
		} else { // LeanMD
			if penalty > 1.2 {
				t.Errorf("LeanMD row %v: penalty %.2f, expected ~1x", row, penalty)
			}
		}
	}
}

func TestIrregularExperiment(t *testing.T) {
	p := FastProfile()
	tbl, err := Irregular(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("irregular rows = %d", len(tbl.Rows))
	}
	// At each latency the most-virtualized column should not exceed the
	// least-virtualized one (the generality claim's quantitative core).
	for _, row := range tbl.Rows {
		var lo, hi float64
		fmt.Sscanf(row[1], "%f", &lo)
		fmt.Sscanf(row[3], "%f", &hi)
		if hi > lo*1.1 {
			t.Errorf("row %v: 256 chunks (%v) worse than 8 chunks (%v)", row[0], hi, lo)
		}
	}
}

func TestClassesTaxonomy(t *testing.T) {
	p := FastProfile()
	tbl, err := Classes(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("classes rows = %d", len(tbl.Rows))
	}
	// At the largest latency the tightly-coupled stencil must suffer the
	// most and the task farm the least — the paper's §1 taxonomy.
	last := tbl.Rows[len(tbl.Rows)-1]
	var stencilX, mdX, farmX float64
	fmt.Sscanf(last[1], "%fx", &stencilX)
	fmt.Sscanf(last[2], "%fx", &mdX)
	fmt.Sscanf(last[3], "%fx", &farmX)
	if !(stencilX > mdX) {
		t.Errorf("stencil slowdown %v not above LeanMD %v", stencilX, mdX)
	}
	if farmX > 2.5 {
		t.Errorf("task farm slowdown %v; coarse prefetched farms should stay near 1x", farmX)
	}
}

// TestGridLBTCPExperiment exercises the two-process grid-LB experiment:
// the balancing round (stats, PUP'd evict/arrive payloads, resume) runs
// over real TCP sockets between the two runtimes, and spreading each
// cluster's squeezed blocks across its idle PEs should not make steps
// slower.
func TestGridLBTCPExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	p := FastProfile()
	p.Stencil.Width, p.Stencil.Height = 256, 256
	p.Stencil.Steps, p.Stencil.Warmup = 8, 3
	tbl, err := GridLBTCP(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("gridlb-tcp rows = %d", len(tbl.Rows))
	}
	var none, grid float64
	fmt.Sscanf(tbl.Rows[0][3], "%f", &none)
	fmt.Sscanf(tbl.Rows[0][4], "%f", &grid)
	if none <= 0 || grid <= 0 {
		t.Fatalf("non-positive per-step times in %v", tbl.Rows[0])
	}
	// Wall-clock, so allow slack — but one balancing round onto twice the
	// PEs must not cost half-again the per-step time.
	if grid > none*1.5 {
		t.Errorf("grid LB per-step %.3fms much worse than none %.3fms", grid, none)
	}
}

// TestStencilTCPAgreesWithDelayDevice is the miniature Table-1 agreement
// criterion: the TCP pathway and the in-process delay device should give
// similar per-step times for the same configuration.
func TestStencilTCPAgreesWithDelayDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	cfg := StencilConfig{Width: 256, Height: 256, Steps: 10, Warmup: 4}
	lat := 2 * time.Millisecond
	rt, err := StencilRealtime(cfg, 4, 64, lat)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := StencilTCP(cfg, 4, 64, lat)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tcp.PerStep) / float64(rt.PerStep)
	if ratio < 0.5 || ratio > 2.5 {
		t.Errorf("TCP/delay per-step ratio %.2f (tcp=%v delay=%v): pathways disagree badly",
			ratio, tcp.PerStep, rt.PerStep)
	}
	// Both observed the same numerics. (The reduction folds partials in
	// arrival order, so the float sums may differ in the last bits.)
	if rel := (rt.Checksum - tcp.Checksum) / rt.Checksum; rel > 1e-12 || rel < -1e-12 {
		t.Errorf("checksums differ across pathways: %v vs %v", rt.Checksum, tcp.Checksum)
	}
}

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{PaperProfile(), FastProfile()} {
		if p.Stencil.Model == nil || p.MD.Model == nil {
			t.Errorf("%s profile missing cost models", p.Name)
		}
		if len(p.Fig3Latencies) == 0 || len(p.Fig4Latencies) == 0 {
			t.Errorf("%s profile missing sweeps", p.Name)
		}
		if p.RealLatency != 1725*time.Microsecond {
			t.Errorf("%s profile real latency %v, want the paper's 1.725ms", p.Name, p.RealLatency)
		}
	}
	if pairCount(PaperProfile().MD) != 3024 {
		t.Errorf("paper MD pair count = %d, want 3024", pairCount(PaperProfile().MD))
	}
}

func TestRunnersRejectBadInput(t *testing.T) {
	cfg := FastProfile().Stencil
	if _, err := StencilSim(cfg, 4, 5, 0, sim.Options{}); err == nil {
		t.Error("non-square virtualization accepted")
	}
	if _, err := runTwoNodeTCP(3, 0, nil); err == nil {
		t.Error("odd PE count accepted for two-node run")
	}
}

// TestMembershipRecoveryFast smokes the membership experiment at the
// fast-profile scale: one seed, one kill, one drain, every disturbed run
// reproducing the undisturbed checksum.
func TestMembershipRecoveryFast(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster runs; skipped in -short")
	}
	p := FastProfile()
	var progress bytes.Buffer
	tbl, rep, err := MembershipRecovery(&progress, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Kill) != len(p.Membership.Seeds) || len(rep.Drain) != len(p.Membership.Seeds) {
		t.Fatalf("got %d kill / %d drain points, want %d each",
			len(rep.Kill), len(rep.Drain), len(p.Membership.Seeds))
	}
	if !rep.ChecksumsMatch {
		t.Error("a disturbed run diverged from the undisturbed checksum")
	}
	for _, pt := range rep.Kill {
		if pt.DetectMS <= 0 || pt.RehomeMS < pt.DetectMS {
			t.Errorf("kill point has detect=%v rehome=%v", pt.DetectMS, pt.RehomeMS)
		}
		if pt.Evacuated == 0 {
			t.Error("kill re-homed no elements")
		}
	}
	for _, pt := range rep.Drain {
		if pt.DrainMS <= 0 {
			t.Errorf("drain point has drain=%v", pt.DrainMS)
		}
		if pt.Evacuated == 0 {
			t.Error("drain evacuated no elements")
		}
	}
	if len(tbl.Rows) != 2*len(p.Membership.Seeds) {
		t.Errorf("table has %d rows, want %d", len(tbl.Rows), 2*len(p.Membership.Seeds))
	}
	var out bytes.Buffer
	if err := rep.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"checksums_match\": true") {
		t.Error("JSON report missing checksums_match")
	}
}
