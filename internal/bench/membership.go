package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/metrics"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/topology"
	"gridmdo/internal/vmi"
)

// MembershipConfig sizes the membership-recovery experiment: an elastic
// taskfarm over real TCP loopback where one node is killed (and, in a
// second series, drained) mid-run. The interesting numbers are wall-clock
// — how long the retransmit budget takes to notice a dead peer, how long
// until its elements are re-homed, and what the disturbance costs against
// an undisturbed baseline — so this experiment has no virtual-time column.
type MembershipConfig struct {
	// Nodes is the cluster size, one process and one PE per node. The
	// coordinator is node 0; the kill victim is the last node and the
	// drain victim node 1, so the two series never disturb the
	// dispatcher.
	Nodes int
	// Tasks, Workers, Prefetch, Batch, Shards, Spin shape the farm
	// exactly as taskfarm.Params does; Spin makes the tasks real CPU
	// work so the run is long enough to disturb.
	Tasks, Workers, Prefetch, Batch, Shards, Spin int
	// EventAfterGrants delays the membership event until the coordinator
	// has granted this many tasks, so the event lands mid-run rather
	// than during startup.
	EventAfterGrants int64
	// RTO and RTOMax tune the reliability layer; the kill-detection
	// latency is a direct function of the retransmit budget built on
	// them.
	RTO, RTOMax time.Duration
	// Drop is a seeded per-frame drop rate injected under the
	// reliability layer on every node. Nonzero drops keep retransmit
	// state alive on every flow, so a kill is always detected by budget
	// exhaustion — with a perfectly clean network, a victim with no
	// unacked frames in flight at kill time would never be probed again.
	// It also makes the measurement honest for a grid setting: the paper
	// targets wide-area links, not a loopback in a lab.
	Drop float64
	// Seeds are the per-repetition farm seeds; each seed runs the
	// baseline, the kill, and the drain once.
	Seeds []int64
}

// MembershipPoint is one measured disturbed run, serialized into
// BENCH_membership.json.
type MembershipPoint struct {
	Seed       int64   `json:"seed"`
	Event      string  `json:"event"`               // "kill" or "drain"
	DetectMS   float64 `json:"detect_ms,omitempty"` // kill -> coordinator declares dead
	RehomeMS   float64 `json:"rehome_ms,omitempty"` // kill -> elements re-homed
	DrainMS    float64 `json:"drain_ms,omitempty"`  // request -> node Left
	MakespanMS float64 `json:"makespan_ms"`
	BaselineMS float64 `json:"baseline_ms"`
	// OverheadPct is the makespan cost of the disturbance relative to
	// the same-seed undisturbed run (negative values are noise).
	OverheadPct float64 `json:"overhead_pct"`
	Evacuated   int64   `json:"evacuated_elements"`
	StaleDrops  int64   `json:"stale_tables_dropped"`
	Checksum    string  `json:"checksum"`
	ChecksumOK  bool    `json:"checksum_ok"`
}

// MembershipReport is the machine-readable result of the membership
// experiment: recovery latency after a mid-run kill and drain cost, each
// cross-checked against the static checksum.
type MembershipReport struct {
	Description      string            `json:"description"`
	Config           membershipConfigJ `json:"config"`
	Kill             []MembershipPoint `json:"kill"`
	Drain            []MembershipPoint `json:"drain"`
	ExpectedChecksum string            `json:"expected_checksum"`
	ChecksumsMatch   bool              `json:"checksums_match"`
}

type membershipConfigJ struct {
	Nodes    int     `json:"nodes"`
	Tasks    int     `json:"tasks"`
	Workers  int     `json:"workers"`
	Prefetch int     `json:"prefetch"`
	Batch    int     `json:"batch"`
	Shards   int     `json:"shards"`
	Spin     int     `json:"spin"`
	RTOMS    float64 `json:"rto_ms"`
	RTOMaxMS float64 `json:"rto_max_ms"`
	Drop     float64 `json:"drop"`
}

// WriteJSON serializes the report.
func (r *MembershipReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// memberProc is one process of the elastic in-process cluster.
type memberProc struct {
	stack  *vmi.Stack
	reg    *metrics.Registry
	mem    *core.Membership
	rt     *core.Runtime
	params *taskfarm.Params
	fd     *vmi.FaultDevice
}

// memberCluster mirrors the wiring cmd/gridnode does per process: stack
// and membership manager exist before Listen, runtimes before the
// address book opens, so no control frame races a half-built process.
type memberCluster struct {
	procs []*memberProc
}

func buildMemberBench(cfg MembershipConfig, seed int64) (*memberCluster, error) {
	n := cfg.Nodes
	nodeOf := func(pe int) int { return pe }
	routeFn := func(pe int32) int { return int(pe) }
	elastic := &taskfarm.ElasticConfig{
		NodeOf:     nodeOf,
		ActiveNode: func(node int) bool { return node >= 0 && node < n },
		CoordNode:  0,
	}
	var initial []core.Member
	for i := 0; i < n; i++ {
		initial = append(initial, core.Member{Node: int32(i), State: core.MemberActive})
	}
	c := &memberCluster{procs: make([]*memberProc, n)}
	fail := func(err error) (*memberCluster, error) {
		c.shutdown()
		return nil, err
	}
	for i := 0; i < n; i++ {
		p := &memberProc{reg: metrics.NewRegistry()}
		c.procs[i] = p
		addrs := make(map[int]string, n)
		for j := 0; j < n; j++ {
			addrs[j] = ""
		}
		addrs[i] = "127.0.0.1:0"
		b := vmi.NewChainBuilder(i, addrs, routeFn).
			Metrics(p.reg).
			OnControl(func(f *vmi.Frame) {
				if f.Dst == vmi.ControlMembership && p.mem != nil {
					p.mem.HandleControl(f)
				}
			})
		if cfg.Drop > 0 {
			p.fd = vmi.NewFaultDevice(seed*int64(n)+int64(i), vmi.FaultPlan{Drop: cfg.Drop})
			b = b.Faults([]vmi.SendDevice{p.fd}, nil)
		}
		st, err := b.
			Reliable(vmi.ReliableConfig{RTO: cfg.RTO, RTOMax: cfg.RTOMax}).
			Build()
		if err != nil {
			return fail(err)
		}
		p.stack = st
		// Dead listeners refuse instantly; don't sit in dial backoff for
		// a peer the retransmit budget is about to declare dead.
		st.TCP().DialAttempts = 2
		p.params = &taskfarm.Params{
			Tasks: cfg.Tasks, Workers: cfg.Workers, Prefetch: cfg.Prefetch,
			Batch: cfg.Batch, Shards: cfg.Shards, Spin: cfg.Spin,
			Seed: uint64(seed), Elastic: elastic, Metrics: p.reg,
		}
		notif := taskfarm.NewNotifier(p.params)
		mem, err := core.NewMembership(core.MembershipConfig{
			Node:        i,
			Coordinator: 0,
			Stack:       st,
			NodeOf:      nodeOf,
			NumPE:       n,
			Initial:     initial,
			Interval:    50 * time.Millisecond,
			OnChange:    notif.OnChange,
			Logf:        func(string, ...any) {},
		})
		if err != nil {
			return fail(err)
		}
		p.mem = mem
		p.params.OnDrained = mem.NotifyDrained
		prog, err := taskfarm.BuildProgram(p.params)
		if err != nil {
			return fail(err)
		}
		topo, err := topology.Single(n)
		if err != nil {
			return fail(err)
		}
		rt, err := core.NewRuntime(topo, prog,
			core.WithCluster(core.ClusterConfig{
				Transport: st, NodeOf: nodeOf, Node: i, PELo: i, PEHi: i + 1,
			}),
			core.WithMetrics(p.reg),
			core.WithMembership(mem))
		if err != nil {
			return fail(err)
		}
		p.rt = rt
		notif.Bind(rt, i)
		mem.Instrument(p.reg)
	}
	addrs := make([]string, n)
	for i, p := range c.procs {
		a, err := p.stack.Listen()
		if err != nil {
			return fail(err)
		}
		addrs[i] = a
	}
	// Only now does traffic start to flow.
	for i, p := range c.procs {
		for j, a := range addrs {
			if j != i {
				p.stack.SetAddr(j, a)
			}
		}
	}
	return c, nil
}

func (c *memberCluster) shutdown() {
	for _, p := range c.procs {
		if p != nil && p.mem != nil {
			p.mem.Close()
		}
	}
	for _, p := range c.procs {
		if p != nil && p.rt != nil {
			p.rt.Stop()
		}
	}
	for _, p := range c.procs {
		if p != nil && p.stack != nil {
			p.stack.Close()
		}
	}
	for _, p := range c.procs {
		if p != nil && p.fd != nil {
			p.fd.Close()
		}
	}
}

// run starts every runtime and blocks for the coordinator's result;
// event, when non-nil, fires once the coordinator has granted
// cfg.EventAfterGrants tasks. Worker exit status is not part of the
// verdict — a killed node legitimately dies with a transport error.
func (c *memberCluster) run(cfg MembershipConfig, event func() error) (*taskfarm.Result, time.Duration, error) {
	for i := 1; i < len(c.procs); i++ {
		go func(p *memberProc) { _, _ = p.rt.Run() }(c.procs[i])
	}
	type outcome struct {
		v   any
		err error
	}
	coord := make(chan outcome, 1)
	start := time.Now()
	go func() {
		v, err := c.procs[0].rt.Run()
		coord <- outcome{v, err}
	}()
	if event != nil {
		if err := awaitCounter(c.procs[0].reg, "taskfarm_tasks_granted_total", cfg.EventAfterGrants, 60*time.Second); err != nil {
			c.shutdown()
			return nil, 0, err
		}
		if err := event(); err != nil {
			c.shutdown()
			return nil, 0, err
		}
	}
	var out outcome
	select {
	case out = <-coord:
	case <-time.After(180 * time.Second):
		c.shutdown()
		return nil, 0, fmt.Errorf("coordinator did not finish within 180s")
	}
	elapsed := time.Since(start)
	if out.err != nil {
		c.shutdown()
		return nil, 0, out.err
	}
	res, ok := out.v.(*taskfarm.Result)
	if !ok {
		c.shutdown()
		return nil, 0, fmt.Errorf("run result = %T, want *taskfarm.Result", out.v)
	}
	return res, elapsed, nil
}

// awaitCounter polls one registry counter until it reaches min.
func awaitCounter(reg *metrics.Registry, name string, min int64, deadline time.Duration) error {
	limit := time.Now().Add(deadline)
	for {
		if v := reg.Snapshot().Value(name); v >= min {
			return nil
		}
		if time.Now().After(limit) {
			return fmt.Errorf("%s never reached %d within %v", name, min, deadline)
		}
		time.Sleep(time.Millisecond)
	}
}

// MembershipRecovery measures elastic-membership recovery on a live
// cluster (DESIGN.md §10): for each seed it runs the same farm three
// times — undisturbed, with the last node hard-killed mid-run (runtime
// stopped, stack closed; the coordinator must detect the death through
// retransmit-budget exhaustion), and with node 1 drained mid-run through
// the full drain protocol. Every disturbed run must reproduce the
// undisturbed checksum bit-for-bit. The report feeds
// BENCH_membership.json.
func MembershipRecovery(w io.Writer, p Profile) (*Table, *MembershipReport, error) {
	cfg := p.Membership
	want := taskfarm.ExpectedChecksum(cfg.Tasks)
	t := &Table{
		Title: fmt.Sprintf("Membership recovery: %d nodes, %d tasks, kill and drain fired after %d grants",
			cfg.Nodes, cfg.Tasks, cfg.EventAfterGrants),
		Header: []string{"Seed", "Event", "Detect (ms)", "Re-home (ms)", "Drain (ms)",
			"Makespan (ms)", "Baseline (ms)", "Overhead", "Evacuated", "Checksum"},
	}
	rep := &MembershipReport{
		Description: "Elastic-membership recovery on a live TCP-loopback cluster, one process per node. " +
			"Per seed: an undisturbed baseline, a hard kill of the last node mid-run (detected by retransmit-budget " +
			"exhaustion, elements re-homed onto survivors), and a cooperative drain of node 1 (full drain protocol, " +
			"LB-free farm path). detect_ms is kill-to-death-declared at the coordinator, rehome_ms kill-to-elements-moved, " +
			"drain_ms request-to-Left. All runs must reproduce the baseline checksum bit-for-bit. " +
			"Regenerate with: gridsim -experiment membership -membership-json BENCH_membership.json",
		Config: membershipConfigJ{
			Nodes: cfg.Nodes, Tasks: cfg.Tasks, Workers: cfg.Workers,
			Prefetch: cfg.Prefetch, Batch: cfg.Batch, Shards: cfg.Shards, Spin: cfg.Spin,
			RTOMS: ms(cfg.RTO), RTOMaxMS: ms(cfg.RTOMax), Drop: cfg.Drop,
		},
		ExpectedChecksum: fmt.Sprintf("%#x", want),
		ChecksumsMatch:   true,
	}

	addRow := func(pt MembershipPoint, detect, rehome, drain string) {
		ck := "ok"
		if !pt.ChecksumOK {
			ck = "MISMATCH"
			rep.ChecksumsMatch = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.Seed), pt.Event, detect, rehome, drain,
			fmt.Sprintf("%.0f", pt.MakespanMS), fmt.Sprintf("%.0f", pt.BaselineMS),
			fmt.Sprintf("%+.1f%%", pt.OverheadPct),
			fmt.Sprintf("%d", pt.Evacuated), ck,
		})
	}

	for _, seed := range cfg.Seeds {
		c, err := buildMemberBench(cfg, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("membership baseline seed %d: %w", seed, err)
		}
		res, base, err := c.run(cfg, nil)
		c.shutdown()
		if err != nil {
			return nil, nil, fmt.Errorf("membership baseline seed %d: %w", seed, err)
		}
		if res.Checksum != want {
			return nil, nil, fmt.Errorf("baseline checksum %#x, want %#x", res.Checksum, want)
		}
		progress(w, "membership baseline seed=%d %8.0f ms\n", seed, ms(base))

		// Hard kill: runtime stopped, stack closed — as close to kill -9
		// as one process gets. Detection and re-home latency come off
		// the coordinator's own metrics, the same counters operators see.
		c, err = buildMemberBench(cfg, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("membership kill seed %d: %w", seed, err)
		}
		victim := cfg.Nodes - 1
		var killAt time.Time
		var detect, rehome time.Duration
		res, elapsed, err := c.run(cfg, func() error {
			killAt = time.Now()
			c.procs[victim].rt.Stop()
			c.procs[victim].stack.Close()
			// One reliable probe pins the detection clock to the kill.
			// Death detection rides the retransmit budget of whatever
			// application flow happens to target the victim; a quiet
			// victim (all its grants acked an instant before the kill)
			// would only be declared dead when the farm next talks to
			// it. The probe is that next frame, sent at a known time, so
			// detect_ms measures the full budget schedule rather than
			// the accident of where the grant pipeline paused.
			if err := c.procs[0].stack.Send(&vmi.Frame{
				Src: 0, Dst: int32(victim), Class: vmi.ClassSystem, Body: []byte("probe"),
			}); err != nil {
				return fmt.Errorf("probe: %w", err)
			}
			if err := awaitCounter(c.procs[0].reg, "membership_deaths_total", 1, 60*time.Second); err != nil {
				return err
			}
			detect = time.Since(killAt)
			if err := awaitCounter(c.procs[0].reg, "membership_evacuated_elements_total", 1, 60*time.Second); err != nil {
				return err
			}
			rehome = time.Since(killAt)
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("membership kill seed %d: %w", seed, err)
		}
		snap := c.procs[0].reg.Snapshot()
		pt := MembershipPoint{
			Seed: seed, Event: "kill",
			DetectMS: ms(detect), RehomeMS: ms(rehome),
			MakespanMS: ms(elapsed), BaselineMS: ms(base),
			OverheadPct: 100 * (elapsed.Seconds() - base.Seconds()) / base.Seconds(),
			Evacuated:   snap.Value("membership_evacuated_elements_total"),
			StaleDrops:  snap.Value("membership_stale_tables_total"),
			Checksum:    fmt.Sprintf("%#x", res.Checksum),
			ChecksumOK:  res.Checksum == want,
		}
		c.shutdown()
		rep.Kill = append(rep.Kill, pt)
		addRow(pt, fmt.Sprintf("%.1f", pt.DetectMS), fmt.Sprintf("%.1f", pt.RehomeMS), "-")
		progress(w, "membership kill     seed=%d %8.0f ms  detect=%.1f ms  rehome=%.1f ms  evac=%d\n",
			seed, pt.MakespanMS, pt.DetectMS, pt.RehomeMS, pt.Evacuated)

		// Cooperative drain: RequestDrain blocks through the full
		// protocol — Draining broadcast, evacuation, drain-clear, the
		// farewell table that makes the node Left.
		c, err = buildMemberBench(cfg, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("membership drain seed %d: %w", seed, err)
		}
		var drain time.Duration
		res, elapsed, err = c.run(cfg, func() error {
			t0 := time.Now()
			if err := c.procs[1].mem.RequestDrain(60 * time.Second); err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			drain = time.Since(t0)
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("membership drain seed %d: %w", seed, err)
		}
		snap = c.procs[0].reg.Snapshot()
		pt = MembershipPoint{
			Seed: seed, Event: "drain",
			DrainMS:    ms(drain),
			MakespanMS: ms(elapsed), BaselineMS: ms(base),
			OverheadPct: 100 * (elapsed.Seconds() - base.Seconds()) / base.Seconds(),
			Evacuated:   snap.Value("membership_evacuated_elements_total"),
			StaleDrops:  snap.Value("membership_stale_tables_total"),
			Checksum:    fmt.Sprintf("%#x", res.Checksum),
			ChecksumOK:  res.Checksum == want,
		}
		c.shutdown()
		rep.Drain = append(rep.Drain, pt)
		addRow(pt, "-", "-", fmt.Sprintf("%.1f", pt.DrainMS))
		progress(w, "membership drain    seed=%d %8.0f ms  drain=%.1f ms  evac=%d\n",
			seed, pt.MakespanMS, pt.DrainMS, pt.Evacuated)
	}
	return t, rep, nil
}
