package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/gate"
	"gridmdo/internal/metrics"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/telemetry"
	"gridmdo/internal/topology"
	"gridmdo/internal/trace"
)

// The telemetry experiment measures the four properties the telemetry
// plane promises (DESIGN.md §12):
//
//  1. Overhead: the agent + tracer must cost <= 2% of the stencil's
//     per-step time on the hot path (best-of-N both ways, so scheduler
//     noise cancels).
//  2. Convergence: the collector's cluster aggregate must equal ground
//     truth within one reporting period on a clean channel, and
//     re-converge within a bounded number of periods when a seeded
//     fraction of reports is dropped (the full-snapshot cadence heals
//     broken delta chains).
//  3. Trace completeness: with the same drop rate on the span stream,
//     the fraction of jobs whose causal tree is retrieved complete
//     (every span ended, tree extends past the root) must stay high —
//     the resend factor is what buys this.
//  4. SLO burn: a latency step from healthy to 4x the objective must
//     trip the multi-window burn alert within two fast windows and
//     clear after the step reverts, on a virtual clock.

// TelemetryConfig sizes the telemetry experiment.
type TelemetryConfig struct {
	// Stencil shapes the overhead phase's hot-path workload.
	Stencil        StencilConfig
	Procs, Objects int
	Latency        time.Duration
	Interval       time.Duration // agent reporting period during the overhead run
	Runs           int           // best-of-N per arm
	OverheadBound  float64       // acceptance: overhead fraction <= this
	// TraceCap sizes the per-PE trace ring for the agent arms. An agent
	// drains the ring every Interval, so it needs only one interval's
	// events — not trace.DefaultCapacity, which is sized for end-of-run
	// post-mortem snapshots. The distinction matters: ring slots hold a
	// string field, so the GC scans the whole resident ring on every
	// cycle, and an oversized ring taxes the mutator far more than the
	// lock-free Record path does (gridnode exposes the same knob as
	// -trace-cap).
	TraceCap int

	// Convergence phase: ConvNodes synthetic agents mutate counters for
	// ConvPeriods reporting periods over a channel dropping Drop of all
	// reports (seeded), then stop; the lag until the aggregate equals
	// ground truth is measured.
	ConvNodes   int
	ConvPeriods int
	Drop        float64
	DropLagMax  int // acceptance: re-convergence lag under drops <= this many periods

	// Completeness phase: Jobs jobs through a serve farm + gateway with
	// the span stream dropping Drop of reports.
	Jobs              int
	CompletenessFloor float64 // acceptance: complete-tree ratio >= this

	// SLO phase (virtual clock).
	SLOObjective  time.Duration
	SLOBudget     float64
	SLOFastWindow time.Duration
	SLOSlowWindow time.Duration
	SLOThreshold  float64

	Seed int64
}

// TelemetryOverhead is the agent-overhead measurement.
type TelemetryOverhead struct {
	Runs           int     `json:"runs"`
	BasePerStepMS  float64 `json:"base_per_step_ms"`
	AgentPerStepMS float64 `json:"agent_per_step_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	Reports        uint64  `json:"reports_shipped"`
}

// TelemetryConvergence is the aggregation-lag measurement.
type TelemetryConvergence struct {
	Nodes           int     `json:"nodes"`
	Periods         int     `json:"periods"`
	Drop            float64 `json:"drop"`
	CleanConverged  bool    `json:"clean_every_period"` // aggregate == truth after every clean period
	DropLagPeriods  int     `json:"drop_lag_periods"`   // periods to re-converge after drops
	DroppedReports  int     `json:"dropped_reports"`
	DeltaChainBreak uint64  `json:"delta_chain_breaks"` // collector-observed gaps
}

// TelemetryCompleteness is the trace-completeness measurement.
type TelemetryCompleteness struct {
	Jobs     int     `json:"jobs"`
	Complete int     `json:"complete_traces"`
	Ratio    float64 `json:"complete_ratio"`
	Spans    int     `json:"stored_spans"`
	Dropped  int     `json:"dropped_reports"`
}

// TelemetrySLO is the burn-alert measurement.
type TelemetrySLO struct {
	FiredAfterSec int     `json:"fired_after_s"` // seconds into the step until the alert fired (-1: never)
	WithinWindows float64 `json:"fired_within_fast_windows"`
	Cleared       bool    `json:"cleared_after_revert"`
	Trips         uint64  `json:"trips"`
}

// TelemetryChecks are the acceptance gates.
type TelemetryChecks struct {
	OverheadWithin      bool `json:"overhead_within_bound"`
	ConvergesClean      bool `json:"converges_within_one_period"`
	ConvergesUnderDrops bool `json:"reconverges_under_drops"`
	CompletenessOK      bool `json:"completeness_above_floor"`
	SLOFired            bool `json:"slo_fired_within_two_windows"`
	SLOCleared          bool `json:"slo_cleared_after_revert"`
}

func (c TelemetryChecks) ok() bool {
	return c.OverheadWithin && c.ConvergesClean && c.ConvergesUnderDrops &&
		c.CompletenessOK && c.SLOFired && c.SLOCleared
}

type telemetryConfigJ struct {
	Procs         int     `json:"procs"`
	Objects       int     `json:"objects"`
	Steps         int     `json:"steps"`
	Runs          int     `json:"runs"`
	IntervalMS    float64 `json:"interval_ms"`
	TraceCap      int     `json:"trace_cap"`
	OverheadBound float64 `json:"overhead_bound"`
	ConvNodes     int     `json:"conv_nodes"`
	Drop          float64 `json:"drop"`
	Jobs          int     `json:"jobs"`
	ComplFloor    float64 `json:"completeness_floor"`
	SLOObjMS      float64 `json:"slo_objective_ms"`
	SLOBudget     float64 `json:"slo_budget"`
}

// TelemetryReport is the machine-readable result (BENCH_telemetry.json).
type TelemetryReport struct {
	Description  string                `json:"description"`
	Config       telemetryConfigJ      `json:"config"`
	Overhead     TelemetryOverhead     `json:"overhead"`
	Convergence  TelemetryConvergence  `json:"convergence"`
	Completeness TelemetryCompleteness `json:"completeness"`
	SLO          TelemetrySLO          `json:"slo"`
	Checks       TelemetryChecks       `json:"checks"`
}

// WriteJSON serializes the report.
func (r *TelemetryReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// telemetryStencilRun runs one stencil arm and returns its per-step time.
// With agent set, the run carries the full telemetry plane: a tracer on
// the runtime, an agent ticking at the configured interval, and a live
// collector ingesting every report — the realistic worst case, since
// ingest cost lands on the same host in this harness.
func telemetryStencilRun(cfg TelemetryConfig, withAgent bool) (time.Duration, uint64, error) {
	reg := metrics.NewRegistry()
	opts := []core.Option{core.WithMetrics(reg)}
	var tr *trace.Tracer
	if withAgent {
		tr = trace.NewWithCapacity(cfg.Procs, cfg.TraceCap)
		opts = append(opts, core.WithTrace(tr))
	}

	var agent *telemetry.Agent
	var coll *telemetry.Collector
	if withAgent {
		coll = telemetry.NewCollector(telemetry.CollectorConfig{})
		var err error
		agent, err = telemetry.NewAgent(telemetry.AgentConfig{
			Node: 0, Registry: reg, Tracer: tr,
			Epoch: time.Now(), NumPE: cfg.Procs,
			Interval: cfg.Interval,
			Send:     func(b []byte) error { return coll.Ingest(b) },
		})
		if err != nil {
			return 0, 0, err
		}
		agent.Start()
		defer agent.Stop()
	}

	res, err := StencilRealtime(cfg.Stencil, cfg.Procs, cfg.Objects, cfg.Latency, opts...)
	if err != nil {
		return 0, 0, err
	}
	var reports uint64
	if coll != nil {
		agent.Stop()
		for _, n := range coll.Nodes() {
			reports += n.Reports
		}
	}
	return res.PerStep, reports, nil
}

// telemetryOverhead measures both arms best-of-N. The arms are
// interleaved round by round — base, agent, base, agent — rather than
// run as two sequential blocks: on a loaded or single-core host the
// machine drifts (frequency, background load, GC pacing) on timescales
// comparable to one block, and a blocked design charges that drift to
// whichever arm ran second. Interleaving exposes both arms to the same
// drift; min-of-N then discards the noisy rounds of each.
func telemetryOverhead(w io.Writer, cfg TelemetryConfig) (TelemetryOverhead, error) {
	var base, with time.Duration
	var reports uint64
	for r := 0; r < cfg.Runs; r++ {
		b, _, err := telemetryStencilRun(cfg, false)
		if err != nil {
			return TelemetryOverhead{}, fmt.Errorf("baseline arm: %w", err)
		}
		if base == 0 || b < base {
			base = b
		}
		a, n, err := telemetryStencilRun(cfg, true)
		if err != nil {
			return TelemetryOverhead{}, fmt.Errorf("agent arm: %w", err)
		}
		if with == 0 || a < with {
			with = a
		}
		if n > reports {
			reports = n
		}
	}
	o := TelemetryOverhead{
		Runs:           cfg.Runs,
		BasePerStepMS:  ms(base),
		AgentPerStepMS: ms(with),
		OverheadPct:    100 * (float64(with) - float64(base)) / float64(base),
		Reports:        reports,
	}
	fmt.Fprintf(w, "telemetry: overhead: base %.3fms/step, with agent %.3fms/step (%+.2f%%, best of %d)\n",
		o.BasePerStepMS, o.AgentPerStepMS, o.OverheadPct, cfg.Runs)
	return o, nil
}

// telemetryConvergence drives synthetic agents against one collector with
// manual report ticks — no wall clock anywhere, so the lag counts are
// exact period counts.
func telemetryConvergence(w io.Writer, cfg TelemetryConfig) (TelemetryConvergence, error) {
	type node struct {
		reg   *metrics.Registry
		tasks *metrics.Counter
		agent *telemetry.Agent
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var dropped int

	build := func(coll *telemetry.Collector, drop float64) ([]*node, error) {
		nodes := make([]*node, cfg.ConvNodes)
		for i := range nodes {
			reg := metrics.NewRegistry()
			n := &node{reg: reg, tasks: reg.Counter("conv_tasks_total")}
			var err error
			n.agent, err = telemetry.NewAgent(telemetry.AgentConfig{
				Node: i, Registry: reg, Epoch: time.Unix(1_700_000_000, 0),
				Send: func(b []byte) error {
					if drop > 0 && rng.Float64() < drop {
						dropped++
						return nil // frame lost on the wire
					}
					return coll.Ingest(b)
				},
			})
			if err != nil {
				return nil, err
			}
			nodes[i] = n
		}
		return nodes, nil
	}

	// Clean channel: after every mutate+report period the aggregate must
	// already equal ground truth — convergence within one period.
	coll := telemetry.NewCollector(telemetry.CollectorConfig{})
	nodes, err := build(coll, 0)
	if err != nil {
		return TelemetryConvergence{}, err
	}
	var truth int64
	clean := true
	for p := 0; p < cfg.ConvPeriods; p++ {
		for i, n := range nodes {
			inc := int64(1 + (p+i)%7)
			n.tasks.Add(inc)
			truth += inc
		}
		for _, n := range nodes {
			if err := n.agent.ReportOnce(); err != nil {
				return TelemetryConvergence{}, err
			}
		}
		if coll.ClusterMetrics().Value("conv_tasks_total") != truth {
			clean = false
		}
	}

	// Lossy channel: same traffic with seeded drops, then quiet reporting
	// periods until the aggregate heals. The full-snapshot cadence bounds
	// the lag; an unlucky seed that drops fulls too costs more periods.
	coll = telemetry.NewCollector(telemetry.CollectorConfig{})
	nodes, err = build(coll, cfg.Drop)
	if err != nil {
		return TelemetryConvergence{}, err
	}
	truth = 0
	for p := 0; p < cfg.ConvPeriods; p++ {
		for i, n := range nodes {
			inc := int64(1 + (p+i)%7)
			n.tasks.Add(inc)
			truth += inc
		}
		for _, n := range nodes {
			if err := n.agent.ReportOnce(); err != nil {
				return TelemetryConvergence{}, err
			}
		}
	}
	lag := 0
	for coll.ClusterMetrics().Value("conv_tasks_total") != truth {
		lag++
		if lag > 4*telemetry.DefaultFullEvery {
			break // report the failure rather than spin forever
		}
		for _, n := range nodes {
			if err := n.agent.ReportOnce(); err != nil {
				return TelemetryConvergence{}, err
			}
		}
	}
	var gaps uint64
	for _, n := range coll.Nodes() {
		gaps += n.Gaps
	}
	c := TelemetryConvergence{
		Nodes: cfg.ConvNodes, Periods: cfg.ConvPeriods, Drop: cfg.Drop,
		CleanConverged: clean, DropLagPeriods: lag,
		DroppedReports: dropped, DeltaChainBreak: gaps,
	}
	fmt.Fprintf(w, "telemetry: convergence: clean channel per-period %v; %.0f%% drops (%d lost, %d chain breaks) healed in %d period(s)\n",
		clean, 100*cfg.Drop, dropped, gaps, lag)
	return c, nil
}

// telemetryCompleteness pushes jobs through a serve farm + gateway whose
// observer is a live collector, with the agent's span stream dropping a
// seeded fraction of reports, and counts how many job trees come back
// complete.
func telemetryCompleteness(w io.Writer, cfg TelemetryConfig) (TelemetryCompleteness, error) {
	reg := metrics.NewRegistry()
	fp := &taskfarm.Params{
		Serve: true, Workers: cfg.Procs,
		Shards: 2, Batch: 4, Prefetch: 2, Spin: 2000,
		CostSkew: 1, Seed: 1, Metrics: reg,
	}
	svc, err := taskfarm.NewService(fp)
	if err != nil {
		return TelemetryCompleteness{}, err
	}
	prog, err := taskfarm.BuildProgram(fp)
	if err != nil {
		return TelemetryCompleteness{}, err
	}
	topo, err := topology.New([]int{cfg.Procs / 2, cfg.Procs - cfg.Procs/2},
		topology.WithInterLatency(time.Millisecond))
	if err != nil {
		return TelemetryCompleteness{}, err
	}

	coll := telemetry.NewCollector(telemetry.CollectorConfig{})
	tr := trace.NewWithCapacity(cfg.Procs, cfg.TraceCap)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var dropped int

	gw, err := gate.New(gate.Config{
		Tenants:  []gate.TenantConfig{{Name: "bench"}},
		Metrics:  reg,
		Observer: coll,
	}, svc)
	if err != nil {
		return TelemetryCompleteness{}, err
	}
	svc.OnResult(gw.OnResult)

	ready := make(chan struct{})
	rt, err := core.NewRuntime(topo, prog,
		core.WithMetrics(reg), core.WithTrace(tr),
		core.WithLifecycle(core.Lifecycle{OnStart: func() { close(ready) }}))
	if err != nil {
		return TelemetryCompleteness{}, err
	}
	svc.Bind(rt)

	agent, err := telemetry.NewAgent(telemetry.AgentConfig{
		Node: 0, Registry: reg, Tracer: tr,
		Epoch: rt.Epoch(), NumPE: cfg.Procs,
		Send: func(b []byte) error {
			if rng.Float64() < cfg.Drop {
				dropped++
				return nil
			}
			return coll.Ingest(b)
		},
	})
	if err != nil {
		return TelemetryCompleteness{}, err
	}

	done := make(chan error, 1)
	go func() { _, err := rt.Run(); done <- err }()
	<-ready

	ids := make([]string, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		j, _, err := gw.Submit("bench", "")
		if err != nil {
			rt.Stop()
			<-done
			return TelemetryCompleteness{}, err
		}
		ids = append(ids, j.ID)
		// Report mid-stream so span digests ride many separately droppable
		// frames instead of one bulk flush.
		if i%8 == 7 {
			_ = agent.ReportOnce()
		}
		select {
		case <-j.Done:
		case <-time.After(30 * time.Second):
			rt.Stop()
			<-done
			return TelemetryCompleteness{}, fmt.Errorf("job %s never completed", j.ID)
		}
	}
	// Drain the span map: each changed span is shipped on resendFactor
	// consecutive reports, so a handful of quiet ticks flushes the tail
	// even through drops.
	for t := 0; t < 8; t++ {
		_ = agent.ReportOnce()
	}
	rt.Stop()
	if err := <-done; err != nil {
		return TelemetryCompleteness{}, err
	}
	gw.Close(nil)

	complete := 0
	for _, id := range ids {
		if doc, ok := coll.JobTrace(id); ok && doc.Complete {
			complete++
		}
	}
	c := TelemetryCompleteness{
		Jobs: cfg.Jobs, Complete: complete,
		Ratio:   float64(complete) / float64(cfg.Jobs),
		Spans:   coll.SpanCount(),
		Dropped: dropped,
	}
	fmt.Fprintf(w, "telemetry: completeness: %d/%d job trees complete (%.1f%%) through %d dropped report(s)\n",
		complete, cfg.Jobs, 100*c.Ratio, dropped)
	return c, nil
}

// telemetrySLO replays the latency-step scenario on a virtual clock: a
// healthy baseline, a step to 4x the objective, and a revert.
func telemetrySLO(w io.Writer, cfg TelemetryConfig) TelemetrySLO {
	tr := telemetry.NewSLOTracker(telemetry.SLOConfig{
		Objective: cfg.SLOObjective, Budget: cfg.SLOBudget,
		FastWindow: cfg.SLOFastWindow, SlowWindow: cfg.SLOSlowWindow,
		BurnThreshold: cfg.SLOThreshold,
	})
	at := time.Unix(1_700_000_000, 0)
	healthy := cfg.SLOObjective / 2
	bad := 4 * cfg.SLOObjective
	record := func(lat time.Duration, secs int) []telemetry.SLOStatus {
		var last []telemetry.SLOStatus
		for s := 0; s < secs; s++ {
			for i := 0; i < 50; i++ {
				tr.Record("bench", at, lat, false)
			}
			at = at.Add(time.Second)
			last = tr.Evaluate(at)
		}
		return last
	}

	slowSecs := int(cfg.SLOSlowWindow / time.Second)
	record(healthy, slowSecs+2) // fill both windows with health

	fired := -1
	stepSecs := 2 * int(cfg.SLOFastWindow/time.Second)
	for s := 0; s < stepSecs; s++ {
		st := record(bad, 1)
		if fired < 0 && len(st) > 0 && st[0].Firing {
			fired = s + 1
		}
	}

	cleared := false
	var trips uint64
	for s := 0; s < slowSecs && !cleared; s++ {
		st := record(healthy, 1)
		if len(st) > 0 {
			trips = st[0].Trips
			cleared = !st[0].Firing
		}
	}

	res := TelemetrySLO{
		FiredAfterSec: fired,
		Cleared:       cleared,
		Trips:         trips,
	}
	if fired > 0 {
		res.WithinWindows = float64(fired) / cfg.SLOFastWindow.Seconds()
	}
	fmt.Fprintf(w, "telemetry: slo: step to %v fired after %ds (%.1f fast windows), cleared=%v, trips=%d\n",
		bad, fired, res.WithinWindows, cleared, trips)
	return res
}

// Telemetry runs the four-phase telemetry experiment and renders the
// results as a table plus the BENCH_telemetry.json report.
func Telemetry(w io.Writer, p Profile) (*Table, *TelemetryReport, error) {
	cfg := p.Telemetry
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = trace.DrainedCapacity
	}
	if w == nil {
		w = io.Discard
	}

	over, err := telemetryOverhead(w, cfg)
	if err != nil {
		return nil, nil, err
	}
	conv, err := telemetryConvergence(w, cfg)
	if err != nil {
		return nil, nil, err
	}
	compl, err := telemetryCompleteness(w, cfg)
	if err != nil {
		return nil, nil, err
	}
	slo := telemetrySLO(w, cfg)

	rep := &TelemetryReport{
		Description: "Telemetry plane acceptance: stencil hot-path overhead of the agent+tracer (best-of-N both arms), " +
			"collector convergence lag on clean and lossy report channels, cross-layer job-trace completeness under " +
			"report drops, and the multi-window SLO burn alert under a latency step on a virtual clock. " +
			"Regenerate with: gridsim -experiment telemetry -telemetry-json BENCH_telemetry.json",
		Config: telemetryConfigJ{
			Procs: cfg.Procs, Objects: cfg.Objects, Steps: cfg.Stencil.Steps,
			Runs: cfg.Runs, IntervalMS: ms(cfg.Interval),
			TraceCap: cfg.TraceCap, OverheadBound: cfg.OverheadBound,
			ConvNodes: cfg.ConvNodes, Drop: cfg.Drop,
			Jobs: cfg.Jobs, ComplFloor: cfg.CompletenessFloor,
			SLOObjMS: ms(cfg.SLOObjective), SLOBudget: cfg.SLOBudget,
		},
		Overhead:     over,
		Convergence:  conv,
		Completeness: compl,
		SLO:          slo,
	}
	rep.Checks = TelemetryChecks{
		OverheadWithin:      over.OverheadPct <= 100*cfg.OverheadBound,
		ConvergesClean:      conv.CleanConverged,
		ConvergesUnderDrops: conv.DropLagPeriods <= cfg.DropLagMax,
		CompletenessOK:      compl.Ratio >= cfg.CompletenessFloor,
		SLOFired:            slo.FiredAfterSec > 0 && slo.WithinWindows <= 2,
		SLOCleared:          slo.Cleared && slo.Trips == 1,
	}

	t := &Table{
		Title:  "Telemetry plane: overhead, convergence, trace completeness, SLO burn",
		Header: []string{"Phase", "Measured", "Bound", "Pass"},
	}
	t.Rows = append(t.Rows,
		[]string{"overhead", fmt.Sprintf("%+.2f%% per step (%.3f vs %.3f ms)", over.OverheadPct, over.AgentPerStepMS, over.BasePerStepMS),
			fmt.Sprintf("<= %.0f%%", 100*cfg.OverheadBound), fmt.Sprintf("%v", rep.Checks.OverheadWithin)},
		[]string{"convergence (clean)", fmt.Sprintf("equal after every period over %d", conv.Periods),
			"1 period", fmt.Sprintf("%v", rep.Checks.ConvergesClean)},
		[]string{"convergence (lossy)", fmt.Sprintf("healed in %d period(s), %d drops, %d chain breaks", conv.DropLagPeriods, conv.DroppedReports, conv.DeltaChainBreak),
			fmt.Sprintf("<= %d periods", cfg.DropLagMax), fmt.Sprintf("%v", rep.Checks.ConvergesUnderDrops)},
		[]string{"completeness", fmt.Sprintf("%d/%d trees (%.1f%%), %d reports dropped", compl.Complete, compl.Jobs, 100*compl.Ratio, compl.Dropped),
			fmt.Sprintf(">= %.0f%%", 100*cfg.CompletenessFloor), fmt.Sprintf("%v", rep.Checks.CompletenessOK)},
		[]string{"slo burn", fmt.Sprintf("fired after %ds (%.1f windows), cleared %v, %d trip(s)", slo.FiredAfterSec, slo.WithinWindows, slo.Cleared, slo.Trips),
			"<= 2 fast windows, 1 trip", fmt.Sprintf("%v", rep.Checks.SLOFired && rep.Checks.SLOCleared)},
	)
	if !rep.Checks.ok() {
		return t, rep, fmt.Errorf("telemetry acceptance checks failed: %+v", rep.Checks)
	}
	return t, rep, nil
}
