package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/gate"
	"gridmdo/internal/metrics"
	"gridmdo/internal/taskfarm"
	"gridmdo/internal/topology"
)

// The gate-soak experiment drives the full gridgate stack — HTTP
// ingress, admission control, weighted fair queueing, idempotent
// resubmit, and the serve-mode farm behind it — over a real TCP
// listener, and measures the three properties the gateway exists to
// provide:
//
//  1. Latency masking at the edge: submit→result p99 under a paced solo
//     load (baseline phase).
//  2. Exactly-once under retry pressure: a soak of many thousands of
//     jobs from many concurrent connections, a fixed fraction of them
//     duplicate-key resubmits, with zero double-executions (soak phase).
//  3. Isolation under overload: a flooding tenant must drown in 429s
//     while a paced tenant's p99 stays within 2x its solo baseline
//     (backpressure phase).
//
// All three phases share one farm and one gateway; per-phase counters
// are isolated with Snapshot.Sub deltas rather than fresh registries,
// so the experiment also exercises the metrics surface the dashboards
// use.

// GateConfig sizes the gate-soak experiment.
type GateConfig struct {
	// Procs, Shards, Batch, Prefetch, Spin shape the serve farm.
	Procs, Shards, Batch, Prefetch, Spin int
	// MaxInflight and SubmitBatch bound the gateway's dispatch pipeline.
	MaxInflight, SubmitBatch int
	// BaselineJobs/BaselineClients size the solo-latency phase.
	BaselineJobs, BaselineClients int
	// SoakJobs/SoakClients size the throughput phase; DupRate is the
	// fraction of submissions that reuse an already-submitted
	// idempotency key.
	SoakJobs, SoakClients int
	DupRate               float64
	// PacedJobs arrive every PacedEvery from the paced tenant while
	// FloodClients blast unpaced submissions at a flood tenant whose
	// queue is capped at FloodQueue.
	PacedJobs    int
	PacedEvery   time.Duration
	FloodClients int
	FloodQueue   int
	// SoakP99Bound is the stated acceptance bound on the soak phase's
	// p99 submit→result latency (0 disables the check).
	SoakP99Bound time.Duration
	// Seed feeds the duplicate-key choice.
	Seed int64
}

// GatePhase is one measured phase.
type GatePhase struct {
	Jobs       int     `json:"jobs"`
	Clients    int     `json:"clients"`
	Duplicates int64   `json:"duplicates"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
}

// GateBackpressure is the isolation phase's measurement.
type GateBackpressure struct {
	PacedJobs    int     `json:"paced_jobs"`
	PacedP99MS   float64 `json:"paced_p99_ms"`
	SoloP99MS    float64 `json:"solo_p99_ms"`
	P99Ratio     float64 `json:"p99_ratio"` // paced under flood / solo
	FloodSent    int64   `json:"flood_sent"`
	Flood429s    int64   `json:"flood_429s"`
	FloodQueued  int64   `json:"flood_admitted"`
	RejectedPct  float64 `json:"flood_rejected_pct"`
	FloodClients int     `json:"flood_clients"`
}

// GateChecks are the acceptance gates the soak asserts.
type GateChecks struct {
	ExactlyOnce      bool `json:"exactly_once"`       // completed == unique submissions
	ZeroDoubleExecs  bool `json:"zero_double_execs"`  // farm-side double-execution audit
	SoakP99Within    bool `json:"soak_p99_within"`    // soak p99 <= SoakP99Bound
	FloodThrottled   bool `json:"flood_throttled"`    // flood tenant saw 429s
	PacedWithinBound bool `json:"paced_within_bound"` // paced p99 <= 2x solo p99
}

func (c GateChecks) ok() bool {
	return c.ExactlyOnce && c.ZeroDoubleExecs && c.SoakP99Within &&
		c.FloodThrottled && c.PacedWithinBound
}

type gateConfigJ struct {
	Procs       int     `json:"procs"`
	Shards      int     `json:"shards"`
	Batch       int     `json:"batch"`
	Prefetch    int     `json:"prefetch"`
	Spin        int     `json:"spin"`
	MaxInflight int     `json:"max_inflight"`
	SubmitBatch int     `json:"submit_batch"`
	DupRate     float64 `json:"dup_rate"`
	FloodQueue  int     `json:"flood_queue"`
	P99BoundMS  float64 `json:"soak_p99_bound_ms"`
}

// GateReport is the machine-readable result (BENCH_gate.json).
type GateReport struct {
	Description  string           `json:"description"`
	Config       gateConfigJ      `json:"config"`
	Baseline     GatePhase        `json:"baseline"`
	Soak         GatePhase        `json:"soak"`
	Backpressure GateBackpressure `json:"backpressure"`
	Completed    int64            `json:"jobs_completed"`
	Unique       int64            `json:"unique_submissions"`
	DoubleExecs  int64            `json:"double_execs"`
	Checks       GateChecks       `json:"checks"`
}

// WriteJSON serializes the report.
func (r *GateReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// gateBench is the assembled in-process stack: serve farm, gateway, and
// a real TCP listener external clients hit.
type gateBench struct {
	reg  *metrics.Registry
	svc  *taskfarm.Service
	gw   *gate.Gateway
	rt   *core.Runtime
	srv  *http.Server
	ln   net.Listener
	base string // host:port
	done chan error
}

func buildGateBench(cfg GateConfig) (*gateBench, error) {
	reg := metrics.NewRegistry()
	fp := &taskfarm.Params{
		Serve: true, Workers: cfg.Procs,
		Shards: cfg.Shards, Batch: cfg.Batch, Steal: true,
		Prefetch: cfg.Prefetch, Spin: cfg.Spin,
		CostSkew: 1, Seed: 1, Metrics: reg,
	}
	svc, err := taskfarm.NewService(fp)
	if err != nil {
		return nil, err
	}
	prog, err := taskfarm.BuildProgram(fp)
	if err != nil {
		return nil, err
	}
	topo, err := topology.New([]int{cfg.Procs / 2, cfg.Procs - cfg.Procs/2},
		topology.WithInterLatency(time.Millisecond))
	if err != nil {
		return nil, err
	}
	gw, err := gate.New(gate.Config{
		Tenants: []gate.TenantConfig{
			{Name: "solo", Weight: 1, MaxQueue: 1 << 16},
			{Name: "paced", Weight: 2, MaxQueue: 1 << 16},
			{Name: "flood", Weight: 1, MaxQueue: cfg.FloodQueue},
		},
		MaxInflight: cfg.MaxInflight,
		SubmitBatch: cfg.SubmitBatch,
		Metrics:     reg,
	}, svc)
	if err != nil {
		return nil, err
	}
	svc.OnResult(gw.OnResult)

	ready := make(chan struct{})
	rt, err := core.NewRuntime(topo, prog,
		core.WithMetrics(reg),
		core.WithLifecycle(core.Lifecycle{OnStart: func() { close(ready) }}))
	if err != nil {
		return nil, err
	}
	svc.Bind(rt)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: gw.Handler()}
	b := &gateBench{
		reg: reg, svc: svc, gw: gw, rt: rt, srv: srv, ln: ln,
		base: ln.Addr().String(),
		done: make(chan error, 1),
	}
	go func() {
		_, err := rt.Run()
		b.done <- err
	}()
	<-ready
	go func() { _ = srv.Serve(ln) }()
	return b, nil
}

func (b *gateBench) shutdown() error {
	b.rt.Stop()
	err := <-b.done
	b.gw.Close(nil)
	_ = b.srv.Close()
	return err
}

// client returns an HTTP client whose transport actually holds conns
// connections open, so a 1000-client soak exercises 1000 sockets
// instead of Go's default two-per-host pool.
func gateClient(conns int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        conns,
		MaxIdleConnsPerHost: conns,
		MaxConnsPerHost:     0,
		IdleConnTimeout:     90 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: 120 * time.Second}
}

// submitWait posts one wait=true job and returns its submit→result
// latency and HTTP status.
func submitWait(cl *http.Client, base, tenant, key string) (time.Duration, int, error) {
	body := fmt.Sprintf(`{"tenant":%q,"wait":true`, tenant)
	if key != "" {
		body += fmt.Sprintf(`,"key":%q`, key)
	}
	body += "}"
	start := time.Now()
	resp, err := cl.Post("http://"+base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode, nil
}

func percentileMS(durs []time.Duration, p float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return ms(sorted[idx])
}

// runPhase fans jobs out over clients goroutines, each long-polling
// wait=true submissions against tenant. keyFor, when non-nil, names the
// idempotency key per global job index ("" = none).
func (b *gateBench) runPhase(tenant string, jobs, clients int, keyFor func(i int) string) (GatePhase, []time.Duration, error) {
	cl := gateClient(clients)
	defer cl.CloseIdleConnections()
	var (
		next   atomic.Int64
		mu     sync.Mutex
		durs   = make([]time.Duration, 0, jobs)
		wg     sync.WaitGroup
		errMu  sync.Mutex
		outErr error
	)
	pre := b.reg.Snapshot()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				key := ""
				if keyFor != nil {
					key = keyFor(i)
				}
				d, code, err := submitWait(cl, b.base, tenant, key)
				if err != nil || code/100 != 2 {
					errMu.Lock()
					if outErr == nil {
						outErr = fmt.Errorf("job %d: status %d err %v", i, code, err)
					}
					errMu.Unlock()
					return
				}
				mu.Lock()
				durs = append(durs, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if outErr != nil {
		return GatePhase{}, nil, outErr
	}
	delta := b.reg.Snapshot().Sub(pre).Filter(metrics.L("tenant", tenant))
	ph := GatePhase{
		Jobs: jobs, Clients: clients,
		Duplicates: delta.Value("gate_jobs_duplicate_total"),
		ElapsedMS:  ms(elapsed),
		JobsPerSec: float64(jobs) / elapsed.Seconds(),
		P50MS:      percentileMS(durs, 0.50),
		P99MS:      percentileMS(durs, 0.99),
	}
	return ph, durs, nil
}

// GateSoak runs the three-phase gateway experiment and renders the
// results as a table plus the BENCH_gate.json report.
func GateSoak(w io.Writer, p Profile) (*Table, *GateReport, error) {
	cfg := p.Gate
	b, err := buildGateBench(cfg)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "gate-soak: gateway on %s (%d PEs, %d shards)\n", b.base, cfg.Procs, cfg.Shards)

	// Phase 1 — solo baseline: paced tenant alone, light concurrency.
	solo, _, err := b.runPhase("solo", cfg.BaselineJobs, cfg.BaselineClients, nil)
	if err != nil {
		b.shutdown()
		return nil, nil, fmt.Errorf("baseline: %w", err)
	}
	fmt.Fprintf(w, "gate-soak: baseline %d jobs: p50 %.2fms p99 %.2fms (%.0f jobs/s)\n",
		solo.Jobs, solo.P50MS, solo.P99MS, solo.JobsPerSec)

	// Phase 2 — soak: SoakJobs submissions over SoakClients connections,
	// DupRate of them resubmitting an earlier key. A duplicate long-polls
	// the original job, so it still measures submit→result latency.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var keyMu sync.Mutex
	keys := make([]string, 0, cfg.SoakJobs)
	keyFor := func(i int) string {
		keyMu.Lock()
		defer keyMu.Unlock()
		if len(keys) > 0 && rng.Float64() < cfg.DupRate {
			return keys[rng.Intn(len(keys))]
		}
		k := fmt.Sprintf("soak-%d", i)
		keys = append(keys, k)
		return k
	}
	soak, _, err := b.runPhase("solo", cfg.SoakJobs, cfg.SoakClients, keyFor)
	if err != nil {
		b.shutdown()
		return nil, nil, fmt.Errorf("soak: %w", err)
	}
	unique := int64(len(keys))
	fmt.Fprintf(w, "gate-soak: soak %d jobs (%d unique, %d dup hits) over %d conns: p99 %.2fms (%.0f jobs/s)\n",
		soak.Jobs, unique, soak.Duplicates, soak.Clients, soak.P99MS, soak.JobsPerSec)

	// Phase 3 — backpressure: flood clients blast the capped flood
	// tenant (no wait, no pacing) while the paced tenant's jobs arrive
	// on a fixed cadence. The flood must be throttled at the edge; the
	// paced tenant must keep its solo-grade latency.
	stopFlood := make(chan struct{})
	var floodSent, flood429 atomic.Int64
	var floodWG sync.WaitGroup
	floodCl := gateClient(cfg.FloodClients)
	for c := 0; c < cfg.FloodClients; c++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				resp, err := floodCl.Post("http://"+b.base+"/v1/jobs", "application/json",
					strings.NewReader(`{"tenant":"flood"}`))
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				floodSent.Add(1)
				if resp.StatusCode == http.StatusTooManyRequests {
					flood429.Add(1)
				}
			}
		}()
	}
	pacedDurs := make([]time.Duration, 0, cfg.PacedJobs)
	pacedCl := gateClient(4)
	tick := time.NewTicker(cfg.PacedEvery)
	var pacedErr error
	for i := 0; i < cfg.PacedJobs; i++ {
		<-tick.C
		d, code, err := submitWait(pacedCl, b.base, "paced", "")
		if err != nil || code/100 != 2 {
			pacedErr = fmt.Errorf("paced job %d: status %d err %v", i, code, err)
			break
		}
		pacedDurs = append(pacedDurs, d)
	}
	tick.Stop()
	close(stopFlood)
	floodWG.Wait()
	floodCl.CloseIdleConnections()
	pacedCl.CloseIdleConnections()
	if pacedErr != nil {
		b.shutdown()
		return nil, nil, pacedErr
	}

	// Drain: every admitted flood job still completes.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		snap := b.reg.Snapshot()
		if snap.Value("gate_queue_depth") == 0 && snap.Value("gate_inflight_tasks") == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	pacedP99 := percentileMS(pacedDurs, 0.99)
	bp := GateBackpressure{
		PacedJobs:    len(pacedDurs),
		PacedP99MS:   pacedP99,
		SoloP99MS:    solo.P99MS,
		P99Ratio:     pacedP99 / solo.P99MS,
		FloodSent:    floodSent.Load(),
		Flood429s:    flood429.Load(),
		FloodQueued:  floodSent.Load() - flood429.Load(),
		FloodClients: cfg.FloodClients,
	}
	if bp.FloodSent > 0 {
		bp.RejectedPct = 100 * float64(bp.Flood429s) / float64(bp.FloodSent)
	}
	fmt.Fprintf(w, "gate-soak: backpressure: flood %d sent / %d rejected (%.1f%%), paced p99 %.2fms (%.2fx solo)\n",
		bp.FloodSent, bp.Flood429s, bp.RejectedPct, bp.PacedP99MS, bp.P99Ratio)

	if err := b.shutdown(); err != nil {
		return nil, nil, err
	}

	completed := b.svc.Completed()
	totalUnique := b.svc.Submitted() // every allocated seq is one distinct farm task
	rep := &GateReport{
		Description: "Gateway soak over a real TCP listener: solo-latency baseline, a duplicate-key soak " +
			"asserting exactly-once execution, and a flood-vs-paced backpressure phase asserting per-tenant " +
			"isolation (flood tenant throttled with 429s, paced tenant p99 within 2x its solo baseline). " +
			"Regenerate with: gridsim -experiment gate-soak -gate-json BENCH_gate.json",
		Config: gateConfigJ{
			Procs: cfg.Procs, Shards: cfg.Shards, Batch: cfg.Batch,
			Prefetch: cfg.Prefetch, Spin: cfg.Spin,
			MaxInflight: cfg.MaxInflight, SubmitBatch: cfg.SubmitBatch,
			DupRate: cfg.DupRate, FloodQueue: cfg.FloodQueue,
			P99BoundMS: ms(cfg.SoakP99Bound),
		},
		Baseline:     solo,
		Soak:         soak,
		Backpressure: bp,
		Completed:    completed,
		Unique:       totalUnique,
		DoubleExecs:  b.svc.DoubleExecs(),
	}
	rep.Checks = GateChecks{
		ExactlyOnce:      completed == totalUnique,
		ZeroDoubleExecs:  rep.DoubleExecs == 0,
		SoakP99Within:    cfg.SoakP99Bound <= 0 || soak.P99MS <= ms(cfg.SoakP99Bound),
		FloodThrottled:   bp.Flood429s > 0,
		PacedWithinBound: bp.P99Ratio <= 2.0,
	}

	t := &Table{
		Title: fmt.Sprintf("Gate soak: %d-job soak over %d connections, %.0f%% duplicate keys",
			cfg.SoakJobs, cfg.SoakClients, 100*cfg.DupRate),
		Header: []string{"Phase", "Jobs", "Clients", "p50 (ms)", "p99 (ms)", "Jobs/s", "Notes"},
	}
	t.Rows = append(t.Rows,
		[]string{"baseline", fmt.Sprintf("%d", solo.Jobs), fmt.Sprintf("%d", solo.Clients),
			fmt.Sprintf("%.2f", solo.P50MS), fmt.Sprintf("%.2f", solo.P99MS),
			fmt.Sprintf("%.0f", solo.JobsPerSec), "solo tenant"},
		[]string{"soak", fmt.Sprintf("%d", soak.Jobs), fmt.Sprintf("%d", soak.Clients),
			fmt.Sprintf("%.2f", soak.P50MS), fmt.Sprintf("%.2f", soak.P99MS),
			fmt.Sprintf("%.0f", soak.JobsPerSec),
			fmt.Sprintf("%d dup hits, %d double-execs", soak.Duplicates, rep.DoubleExecs)},
		[]string{"backpressure", fmt.Sprintf("%d", bp.PacedJobs), fmt.Sprintf("%d", 1+cfg.FloodClients),
			"-", fmt.Sprintf("%.2f", bp.PacedP99MS), "-",
			fmt.Sprintf("flood %.1f%% rejected, paced %.2fx solo", bp.RejectedPct, bp.P99Ratio)},
	)
	status := "PASS"
	if !rep.Checks.ok() {
		status = "FAIL"
	}
	t.Rows = append(t.Rows, []string{"checks", "-", "-", "-", "-", "-",
		fmt.Sprintf("%s (exactly-once %v, zero-doubles %v, soak-p99 %v, flood-throttled %v, paced-bounded %v)",
			status, rep.Checks.ExactlyOnce, rep.Checks.ZeroDoubleExecs, rep.Checks.SoakP99Within,
			rep.Checks.FloodThrottled, rep.Checks.PacedWithinBound)})
	if !rep.Checks.ok() {
		return t, rep, fmt.Errorf("gate-soak acceptance checks failed: %+v", rep.Checks)
	}
	return t, rep, nil
}
