package bench

import (
	"bytes"
	"testing"
	"time"
)

func TestTelemetrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time runs; skipped in -short")
	}
	p := FastProfile()
	// Trim the overhead arms to one tiny run each and disable the
	// overhead gate entirely: at this mesh size the per-step time is
	// dominated by scheduler noise, so the number is meaningless — the
	// headline 2% claim is asserted at paper scale (BENCH_telemetry.json).
	p.Telemetry.Stencil = StencilConfig{Width: 256, Height: 256, Steps: 4, Warmup: 2}
	p.Telemetry.Procs, p.Telemetry.Objects = 4, 16
	p.Telemetry.Runs = 1
	p.Telemetry.OverheadBound = 100
	p.Telemetry.Interval = 20 * time.Millisecond
	p.Telemetry.Jobs = 40

	var progress bytes.Buffer
	tbl, rep, err := Telemetry(&progress, p)
	if err != nil {
		t.Fatalf("%v\n%s", err, progress.String())
	}
	if tbl == nil || len(tbl.Rows) != 5 {
		t.Fatalf("want 5 table rows, got %+v", tbl)
	}
	if !rep.Checks.ConvergesClean {
		t.Error("clean channel did not converge within one period")
	}
	if rep.Convergence.DroppedReports == 0 {
		t.Error("lossy phase dropped no reports; drop injection is dead")
	}
	if !rep.Checks.ConvergesUnderDrops {
		t.Errorf("lossy channel took %d periods to heal (max %d)",
			rep.Convergence.DropLagPeriods, p.Telemetry.DropLagMax)
	}
	if !rep.Checks.CompletenessOK {
		t.Errorf("only %d/%d job trees complete", rep.Completeness.Complete, rep.Completeness.Jobs)
	}
	if !rep.Checks.SLOFired || !rep.Checks.SLOCleared {
		t.Errorf("slo phase: %+v", rep.SLO)
	}
}
