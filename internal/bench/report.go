package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Series is one curve of a figure.
type Series struct {
	Label string
	X     []time.Duration // latencies
	Y     []time.Duration // per-step times
}

// SubPlot is one panel of a figure (e.g. one processor count in Figure 3).
type SubPlot struct {
	Title  string
	Series []Series
}

// Figure is a regenerated paper figure as data series.
type Figure struct {
	Title string
	XName string
	Plots []SubPlot
}

// Render writes the figure as aligned text tables, one per sub-plot:
// rows are latencies, columns are series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", f.Title, strings.Repeat("=", len(f.Title)))
	for _, sub := range f.Plots {
		fmt.Fprintf(w, "\n-- %s --\n", sub.Title)
		if len(sub.Series) == 0 {
			continue
		}
		fmt.Fprintf(w, "%12s", f.XName)
		for _, s := range sub.Series {
			fmt.Fprintf(w, " %16s", s.Label)
		}
		fmt.Fprintln(w)
		for i := range sub.Series[0].X {
			fmt.Fprintf(w, "%12s", sub.Series[0].X[i])
			for _, s := range sub.Series {
				if i < len(s.Y) {
					fmt.Fprintf(w, " %13.3fms", ms(s.Y[i]))
				} else {
					fmt.Fprintf(w, " %16s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// CSV writes the figure as long-form CSV (plot,series,latency_ms,perstep_ms).
func (f *Figure) CSV(w io.Writer) {
	fmt.Fprintln(w, "plot,series,latency_ms,perstep_ms")
	for _, sub := range f.Plots {
		for _, s := range sub.Series {
			for i := range s.X {
				fmt.Fprintf(w, "%q,%q,%.3f,%.4f\n", sub.Title, s.Label, ms(s.X[i]), ms(s.Y[i]))
			}
		}
	}
}

// Table is a regenerated paper table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as CSV.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}
