package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"gridmdo/internal/sim"
	"gridmdo/internal/taskfarm"
)

// FarmConfig sizes the taskfarm-at-scale experiment (DESIGN.md §9): a
// worker-count sweep across the single master's WRONJ knee, run three
// ways — single master, sharded dispatchers, sharded + stealing.
type FarmConfig struct {
	// Tasks is the task count, shared by every point so checksums are
	// comparable across the whole sweep.
	Tasks int
	// TaskCost is JT, the modeled per-task compute (before skew).
	TaskCost time.Duration
	// AssignCost is AT, the modeled dispatcher time per assignment. The
	// single-master knee sits at Workers = TaskCost/AssignCost.
	AssignCost time.Duration
	// Prefetch and Batch are the pipeline depth and grant batch cap.
	Prefetch, Batch int
	// CostSkew ramps per-task cost 1x..CostSkew-x across the task space
	// (identical for all three configurations — it changes where the work
	// is, not what the values are, so checksums still match).
	CostSkew float64
	// Workers is the sweep; each point runs with one worker per PE.
	Workers []int
	// WorkersPerShard sets the shard count at each point:
	// shards = max(4, workers/WorkersPerShard).
	WorkersPerShard int
	// Latency is the inter-cluster one-way latency.
	Latency time.Duration
}

// kneeWorkers is the analytic single-master saturation point JT/AT.
func (c FarmConfig) kneeWorkers() int {
	if c.AssignCost <= 0 {
		return 0
	}
	return int(c.TaskCost / c.AssignCost)
}

func (c FarmConfig) shardsFor(workers int) int {
	s := workers / c.WorkersPerShard
	if s < 4 {
		s = 4
	}
	if s > workers {
		s = workers
	}
	return s
}

// FarmPoint is one measured sweep point, serialized into
// BENCH_taskfarm.json.
type FarmPoint struct {
	Workers         int     `json:"workers"`
	Shards          int     `json:"shards"`
	MakespanMS      float64 `json:"makespan_ms"`
	TasksPerSec     float64 `json:"tasks_per_sec"`
	Checksum        string  `json:"checksum"`
	WorkerImbalance float64 `json:"worker_imbalance"`
	ShardImbalance  float64 `json:"shard_imbalance,omitempty"`
	Steals          int     `json:"steals,omitempty"`
	StolenTasks     int     `json:"stolen_tasks,omitempty"`
}

// FarmReport is the machine-readable result of the taskfarm-scale
// experiment: the three throughput curves plus the checksum cross-check.
type FarmReport struct {
	Description      string      `json:"description"`
	Config           farmConfigJ `json:"config"`
	KneeWorkers      int         `json:"knee_workers_jt_over_at"`
	SingleMaster     []FarmPoint `json:"single_master"`
	Sharded          []FarmPoint `json:"sharded"`
	ShardedStealing  []FarmPoint `json:"sharded_stealing"`
	ExpectedChecksum string      `json:"expected_checksum"`
	ChecksumsMatch   bool        `json:"checksums_match"`
}

type farmConfigJ struct {
	Tasks        int     `json:"tasks"`
	TaskCostMS   float64 `json:"task_cost_ms"`
	AssignCostUS float64 `json:"assign_cost_us"`
	Prefetch     int     `json:"prefetch"`
	Batch        int     `json:"batch"`
	CostSkew     float64 `json:"cost_skew"`
	LatencyMS    float64 `json:"latency_ms"`
}

// WriteJSON serializes the report.
func (r *FarmReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FarmSim runs one farm configuration on the virtual-time engine with one
// worker per PE.
func FarmSim(cfg FarmConfig, workers, shards int, steal bool) (*taskfarm.Result, error) {
	p := &taskfarm.Params{
		Tasks: cfg.Tasks, Workers: workers, Prefetch: cfg.Prefetch,
		TaskCost: cfg.TaskCost, AssignCost: cfg.AssignCost,
		CostSkew: cfg.CostSkew, Seed: 1,
	}
	if shards > 1 {
		p.Shards = shards
		p.Batch = cfg.Batch
		p.Steal = steal
	}
	prog, err := taskfarm.BuildProgram(p)
	if err != nil {
		return nil, err
	}
	topo, err := buildTopo(workers, cfg.Latency)
	if err != nil {
		return nil, err
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 500_000_000})
	if err != nil {
		return nil, err
	}
	v, _, err := e.Run()
	if err != nil {
		return nil, err
	}
	return v.(*taskfarm.Result), nil
}

// TaskfarmScale sweeps worker count across the WRONJ knee for the three
// dispatcher configurations and reports throughput, imbalance, and steal
// activity per point. The returned report feeds BENCH_taskfarm.json; the
// table is the gridsim-rendered view of the same runs.
func TaskfarmScale(w io.Writer, p Profile) (*Table, *FarmReport, error) {
	cfg := p.Farm
	t := &Table{
		Title: fmt.Sprintf("Taskfarm at scale: %d tasks, JT=%v AT=%v (single-master knee at %d workers), skew %.0fx",
			cfg.Tasks, cfg.TaskCost, cfg.AssignCost, cfg.kneeWorkers(), cfg.CostSkew),
		Header: []string{"Workers", "Config", "Shards", "Makespan (ms)", "Tasks/s",
			"Imb(workers)", "Imb(shards)", "Steals", "Stolen"},
	}
	rep := &FarmReport{
		Description: "Taskfarm throughput vs worker count, one worker per PE, across the single-master WRONJ knee (JT/AT). " +
			"Three configurations over the identical task set: one dispatcher, sharded dispatchers (guided batched grants), " +
			"sharded plus randomized work stealing. CostSkew ramps per-task cost across the task space, so static shard " +
			"ownership is imbalanced and stealing has real work to move. Regenerate with: gridsim -experiment taskfarm-scale -farm-json BENCH_taskfarm.json",
		Config: farmConfigJ{
			Tasks: cfg.Tasks, TaskCostMS: ms(cfg.TaskCost),
			AssignCostUS: float64(cfg.AssignCost) / float64(time.Microsecond),
			Prefetch:     cfg.Prefetch, Batch: cfg.Batch, CostSkew: cfg.CostSkew,
			LatencyMS: ms(cfg.Latency),
		},
		KneeWorkers:      cfg.kneeWorkers(),
		ExpectedChecksum: fmt.Sprintf("%#x", taskfarm.ExpectedChecksum(cfg.Tasks)),
		ChecksumsMatch:   true,
	}
	want := taskfarm.ExpectedChecksum(cfg.Tasks)

	type variant struct {
		name   string
		shards func(workers int) int
		steal  bool
		curve  *[]FarmPoint
	}
	variants := []variant{
		{"single", func(int) int { return 1 }, false, &rep.SingleMaster},
		{"sharded", cfg.shardsFor, false, &rep.Sharded},
		{"sharded+steal", cfg.shardsFor, true, &rep.ShardedStealing},
	}
	for _, workers := range cfg.Workers {
		for _, v := range variants {
			shards := v.shards(workers)
			res, err := FarmSim(cfg, workers, shards, v.steal)
			if err != nil {
				return nil, nil, fmt.Errorf("taskfarm-scale %s W=%d: %w", v.name, workers, err)
			}
			if res.Checksum != want {
				rep.ChecksumsMatch = false
			}
			pt := FarmPoint{
				Workers:         workers,
				Shards:          shards,
				MakespanMS:      ms(res.Makespan),
				TasksPerSec:     float64(cfg.Tasks) / res.Makespan.Seconds(),
				Checksum:        fmt.Sprintf("%#x", res.Checksum),
				WorkerImbalance: taskfarm.Imbalance(res.PerWorker),
				Steals:          res.Steals,
				StolenTasks:     res.StolenTask,
			}
			shardImb := "-"
			if shards > 1 {
				pt.ShardImbalance = taskfarm.Imbalance(res.PerShard)
				shardImb = fmt.Sprintf("%.2f", pt.ShardImbalance)
			}
			*v.curve = append(*v.curve, pt)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", workers), v.name, fmt.Sprintf("%d", shards),
				fmt.Sprintf("%.1f", pt.MakespanMS),
				fmt.Sprintf("%.0f", pt.TasksPerSec),
				fmt.Sprintf("%.2f", pt.WorkerImbalance),
				shardImb,
				fmt.Sprintf("%d", res.Steals),
				fmt.Sprintf("%d", res.StolenTask),
			})
			progress(w, "taskfarm-scale %-13s W=%-6d S=%-3d  %10.1f ms  %12.0f tasks/s  steals=%d\n",
				v.name, workers, shards, pt.MakespanMS, pt.TasksPerSec, res.Steals)
		}
	}
	return t, rep, nil
}
