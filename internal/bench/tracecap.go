package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/trace"
)

// traceRun prepares per-run trace capture for a real-time experiment. When
// the profile has a TraceDir it returns the profile's runtime options plus a
// fresh tracer, and a flush function that drops a snapshot (readable by
// cmd/gridtrace) and a plain-text overlap report next to the results; with
// no TraceDir it is a no-op passthrough. In the two-node TCP runners both
// runtimes share the tracer, so one snapshot covers every PE of the run.
func (p Profile) traceRun(name string, procs int) ([]core.Option, func()) {
	opts := p.rtOpts()
	if p.TraceDir == "" {
		return opts, func() {}
	}
	tr := trace.New(procs)
	opts = append(opts, core.WithTrace(tr))
	return opts, func() {
		if err := writeTraceArtifacts(p.TraceDir, name, tr, procs); err != nil {
			fmt.Fprintf(os.Stderr, "bench: trace %s: %v\n", name, err)
		}
	}
}

// traceSimRun prepares per-run trace capture for a virtual-time experiment.
// It returns a tracer to pass via sim.Options.Trace (nil when the profile
// has no TraceDir — a nil tracer records nothing) and a flush function
// writing the same artifact pair traceRun does. Virtual time models PEs as
// genuinely parallel, so these are the snapshots in which the overlap
// profile is exact rather than subject to host scheduling.
func (p Profile) traceSimRun(name string, procs int) (*trace.Tracer, func()) {
	if p.TraceDir == "" {
		return nil, func() {}
	}
	tr := trace.New(procs)
	return tr, func() {
		if err := writeTraceArtifacts(p.TraceDir, name, tr, procs); err != nil {
			fmt.Fprintf(os.Stderr, "bench: trace %s: %v\n", name, err)
		}
	}
}

// writeTraceArtifacts writes <dir>/<name>.trace.json (a trace.Snapshot) and
// <dir>/<name>.overlap.txt (the overlap profile) for one finished run.
func writeTraceArtifacts(dir, name string, tr *trace.Tracer, procs int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	evs := tr.Events()
	var horizon time.Duration
	for _, ev := range evs {
		if end := ev.At + time.Duration(ev.Arg1); ev.Kind == trace.EvIdle && end > horizon {
			horizon = end
		} else if ev.At > horizon {
			horizon = ev.At
		}
	}
	snap := tr.Snapshot(0, 0, procs, horizon)
	f, err := os.Create(filepath.Join(dir, name+".trace.json"))
	if err != nil {
		return err
	}
	if err := snap.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	of, err := os.Create(filepath.Join(dir, name+".overlap.txt"))
	if err != nil {
		return err
	}
	defer of.Close()
	trace.ComputeOverlap(evs, procs, horizon).Report(of)
	return nil
}
