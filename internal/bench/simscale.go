package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

// The sim-scale experiment measures the virtual-time engine itself at
// the scales the paper's Grid scenarios imply — thousands of PEs and up
// to a million chares — along two axes:
//
//  1. Throughput: a token-wave workload (every hop crosses a PE
//     boundary, charged one intra-cluster link delay of model time and
//     a fixed amount of host CPU mixing) is swept over {sequential,
//     parallel×workers} at each PE count. The parallel engine must
//     reproduce the sequential checksum bit-for-bit at every point;
//     speedup is whatever the host's cores actually deliver, recorded
//     together with the core count so a single-core run is an honest
//     data point rather than a failed claim.
//  2. Memory: the big arm runs the same wave over Big.Chares elements
//     with Options.PackCold bounding each PE's live set. Chare state is
//     PUP-packed between events, so the heap must hold only the packed
//     essence (~tens of bytes per chare) plus the small live set — not
//     a million live chares with their working buffers.

// SimScaleConfig sizes the sim-scale experiment.
type SimScaleConfig struct {
	// PEs are the machine sizes swept; topologies come from the synthetic
	// generator (64-PE clusters with a seeded latency mesh between them).
	PEs []int
	// Workers are the parallel-engine worker counts swept per PE count.
	Workers []int
	// TokensPerPE seeds this many concurrent token waves per PE.
	TokensPerPE int
	// Rounds is the number of hops each token makes.
	Rounds int
	// CharesPerPE virtualizes the wave array in the throughput sweep.
	CharesPerPE int
	// Scratch is the per-chare working-buffer size in 8-byte words. The
	// buffer is rebuilt on hydration and never packed — the out-of-core
	// pattern the cold store exists for.
	Scratch int
	// HopCost is the model CPU time charged per hop.
	HopCost time.Duration
	// Spec, when non-empty, replaces the generated machine sweep with
	// this one synthetic topology (gridsim -topo); the PE count comes
	// from the spec itself.
	Spec string
	// Big is the bounded-memory arm.
	Big SimScaleBig
}

// SimScaleBig sizes the million-chare cold-store arm.
type SimScaleBig struct {
	Chares  int
	PEs     int
	Rounds  int
	PackCap int // live chares allowed per PE
	Workers int
	// HeapBoundBytes is the acceptance bound on heap growth (measured
	// via runtime.ReadMemStats after a forced GC, engine included).
	HeapBoundBytes int64
}

// SimScalePoint is one engine arm at one machine size.
type SimScalePoint struct {
	PEs          int     `json:"pes"`
	Chares       int     `json:"chares"`
	Engine       string  `json:"engine"` // "seq" or "parN"
	Workers      int     `json:"workers"`
	Shards       int     `json:"shards"`
	Events       int64   `json:"events"`
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	VirtualMS    float64 `json:"virtual_ms"`
	Checksum     string  `json:"checksum"`
	Speedup      float64 `json:"speedup_vs_seq"`
}

// SimScaleBigReport is the cold-store arm's measurements.
type SimScaleBigReport struct {
	Chares          int     `json:"chares"`
	PEs             int     `json:"pes"`
	PackCap         int     `json:"pack_cap_per_pe"`
	Events          int64   `json:"events"`
	WallMS          float64 `json:"wall_ms"`
	Checksum        string  `json:"checksum"`
	ColdPacks       int64   `json:"cold_packs"`
	ColdHydrates    int64   `json:"cold_hydrates"`
	PackedPeakBytes int64   `json:"packed_peak_bytes"`
	HeapUsedBytes   int64   `json:"heap_used_bytes"`
	HeapBoundBytes  int64   `json:"heap_bound_bytes"`
	WithinBound     bool    `json:"within_bound"`
}

// SimScaleReport is the BENCH_simscale.json artifact.
type SimScaleReport struct {
	Description    string            `json:"description"`
	HostCores      int               `json:"host_cores"`
	GoMaxProcs     int               `json:"gomaxprocs"`
	TopoSpec       string            `json:"topo_spec"`
	LookaheadUS    float64           `json:"lookahead_us"`
	TokensPerPE    int               `json:"tokens_per_pe"`
	Rounds         int               `json:"rounds"`
	HopCostUS      float64           `json:"hop_cost_us"`
	Sweep          []SimScalePoint   `json:"sweep"`
	SpeedupAt1024  float64           `json:"speedup_at_1024"`
	ChecksumsMatch bool              `json:"checksums_match"`
	Big            SimScaleBigReport `json:"big"`
}

// WriteJSON serializes the report.
func (r *SimScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// simScaleSpec is the generator spec for a machine of pes processors:
// 64-PE clusters joined by a seeded heterogeneous latency mesh. The
// lookahead — and so the parallel window — is the 10µs intra-cluster
// hop, the common case for the wave's stride-1 traffic.
func simScaleSpec(pes int) string {
	if pes < 64 {
		return fmt.Sprintf("%dx1;wan=5ms", pes)
	}
	return fmt.Sprintf("%dx64;wan=5ms;mesh=rand:3:2ms:10ms", pes/64)
}

func simScaleTopo(pes int) (*topology.Topology, string, error) {
	return buildSpec(simScaleSpec(pes))
}

func buildSpec(spec string) (*topology.Topology, string, error) {
	s, err := topology.ParseSpec(spec)
	if err != nil {
		return nil, spec, err
	}
	topo, err := s.Build()
	return topo, spec, err
}

// waveToken is the message a wave passes along; hops count down to zero
// and the mixed value becomes part of the run checksum.
type waveToken struct {
	Hops int
	Val  uint64
}

// waveChare is one element of the wave array. Only idx, hits, and sum
// are PUP-packed; the scratch buffer is derived state, rebuilt by the
// constructor on hydration — so a packed chare costs ~32 bytes while a
// live one costs Scratch*8.
type waveChare struct {
	idx     int
	hits    int64
	sum     uint64
	scratch []uint64
	chares  int
	root    core.ElemRef
}

func (c *waveChare) PUP(p *core.PUP) {
	p.Int(&c.idx)
	p.Int64(&c.hits)
	p.Uint64(&c.sum)
}

func (c *waveChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	tok := data.(waveToken)
	v := tok.Val
	for _, s := range c.scratch {
		v = splitmix(v ^ s)
	}
	c.hits++
	c.sum += v
	ctx.Charge(waveHopCost)
	if tok.Hops > 0 {
		next := (c.idx + 1) % c.chares
		ctx.Send(core.ElemRef{Array: 0, Index: next}, 0, waveToken{Hops: tok.Hops - 1, Val: v})
		return
	}
	ctx.Send(c.root, 0, v)
}

// waveHopCost is set by waveProgram before any run; the engine is
// single-program-per-process here, and keeping it out of the packed
// state keeps the PUP essence minimal.
var waveHopCost time.Duration

// waveRoot collects one completion per seeded token and exits with the
// order-independent sum checksum.
type waveRoot struct {
	want  int
	count int
	sum   uint64
}

func (r *waveRoot) PUP(p *core.PUP) {
	p.Int(&r.want)
	p.Int(&r.count)
	p.Uint64(&r.sum)
}

func (r *waveRoot) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	r.sum += data.(uint64)
	r.count++
	if r.count == r.want {
		ctx.ExitWith(r.sum)
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// waveProgram builds the token-wave workload: tokens seeded round-robin
// across the wave array (one chare per PE slot), each hopping stride-1
// for rounds hops, then reporting to a root on PE 0.
func waveProgram(chares, numPE, tokensPerPE, rounds, scratch int, hopCost time.Duration) *core.Program {
	waveHopCost = hopCost
	tokens := tokensPerPE * numPE
	if tokens > chares {
		tokens = chares
	}
	root := core.ElemRef{Array: 1, Index: 0}
	return &core.Program{
		Arrays: []core.ArraySpec{
			{
				ID: 0, N: chares,
				New: func(i int) core.Chare {
					c := &waveChare{idx: i, chares: chares, root: root, scratch: make([]uint64, scratch)}
					for j := range c.scratch {
						c.scratch[j] = splitmix(uint64(i)<<20 + uint64(j))
					}
					return c
				},
				Map: func(i, pes int) int { return i % pes },
			},
			{
				ID: 1, N: 1,
				New: func(i int) core.Chare { return &waveRoot{want: tokens} },
				Map: func(i, pes int) int { return 0 },
			},
		},
		Start: func(ctx *core.Ctx) {
			for t := 0; t < tokens; t++ {
				ctx.Send(core.ElemRef{Array: 0, Index: t}, 0, waveToken{Hops: rounds, Val: splitmix(uint64(t))})
			}
		},
	}
}

func runWave(topo *topology.Topology, prog *core.Program, opts sim.Options, workers int) (uint64, time.Duration, sim.Stats, time.Duration, error) {
	var e *sim.Engine
	var err error
	if workers == 0 {
		e, err = sim.New(topo, prog, opts)
	} else {
		e, err = sim.NewParallel(topo, prog, opts, workers)
	}
	if err != nil {
		return 0, 0, sim.Stats{}, 0, err
	}
	start := time.Now()
	v, vt, err := e.Run()
	wall := time.Since(start)
	if err != nil {
		return 0, 0, sim.Stats{}, 0, err
	}
	sum, ok := v.(uint64)
	if !ok {
		return 0, 0, sim.Stats{}, 0, fmt.Errorf("bench: wave exited with %T, want uint64", v)
	}
	return sum, vt, e.Stats(), wall, nil
}

// SimScale runs the scaling sweep and the cold-store arm.
func SimScale(w io.Writer, p Profile) (*Table, *SimScaleReport, error) {
	cfg := p.SimScale
	rep := &SimScaleReport{
		Description: "virtual-time engine scaling: sequential vs conservative-parallel event execution, " +
			"plus the PUP cold-store arm bounding memory for large chare counts",
		HostCores:   runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		TokensPerPE: cfg.TokensPerPE,
		Rounds:      cfg.Rounds,
		HopCostUS:   float64(cfg.HopCost) / float64(time.Microsecond),
	}
	rep.ChecksumsMatch = true
	tbl := &Table{
		Title:  "Engine scaling: token wave, events/second by machine size and engine",
		Header: []string{"PEs", "chares", "engine", "events", "wall", "ev/s", "speedup", "checksum ok"},
	}

	machines := make([]string, 0, len(cfg.PEs))
	if cfg.Spec != "" {
		machines = append(machines, cfg.Spec)
	} else {
		for _, pes := range cfg.PEs {
			machines = append(machines, simScaleSpec(pes))
		}
	}
	for _, machine := range machines {
		topo, spec, err := buildSpec(machine)
		if err != nil {
			return nil, nil, err
		}
		pes := topo.NumPE()
		if rep.TopoSpec == "" {
			rep.TopoSpec = spec
			rep.LookaheadUS = float64(topo.Lookahead()) / float64(time.Microsecond)
		}
		chares := pes * cfg.CharesPerPE
		arms := make([]int, 0, 1+len(cfg.Workers))
		arms = append(arms, 0)
		arms = append(arms, cfg.Workers...)
		var refSum uint64
		var refRate float64
		for _, workers := range arms {
			if w != nil {
				fmt.Fprintf(w, "[sim-scale pes=%d workers=%d]\n", pes, workers)
			}
			prog := waveProgram(chares, pes, cfg.TokensPerPE, cfg.Rounds, cfg.Scratch, cfg.HopCost)
			sum, vt, stats, wall, err := runWave(topo, prog, sim.Options{}, workers)
			if err != nil {
				return nil, nil, fmt.Errorf("sim-scale pes=%d workers=%d: %w", pes, workers, err)
			}
			pt := SimScalePoint{
				PEs: pes, Chares: chares, Workers: stats.Workers, Shards: stats.Shards,
				Events: stats.Events, WallMS: ms(wall),
				EventsPerSec: float64(stats.Events) / wall.Seconds(),
				VirtualMS:    ms(vt),
				Checksum:     fmt.Sprintf("%016x", sum),
			}
			if workers == 0 {
				pt.Engine = "seq"
				refSum, refRate = sum, pt.EventsPerSec
				pt.Speedup = 1
			} else {
				pt.Engine = fmt.Sprintf("par%d", workers)
				pt.Speedup = pt.EventsPerSec / refRate
				if sum != refSum {
					rep.ChecksumsMatch = false
				}
				if pes == 1024 && pt.Speedup > rep.SpeedupAt1024 {
					rep.SpeedupAt1024 = pt.Speedup
				}
			}
			rep.Sweep = append(rep.Sweep, pt)
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(pes), fmt.Sprint(chares), pt.Engine,
				fmt.Sprint(pt.Events), wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", pt.EventsPerSec),
				fmt.Sprintf("%.2f", pt.Speedup),
				fmt.Sprint(sum == refSum),
			})
		}
	}

	big, err := simScaleBig(w, cfg)
	if err != nil {
		return nil, nil, err
	}
	rep.Big = *big
	tbl.Rows = append(tbl.Rows, []string{
		fmt.Sprint(big.PEs), fmt.Sprint(big.Chares), "par+cold",
		fmt.Sprint(big.Events), fmt.Sprintf("%.0fms", big.WallMS), "-", "-",
		fmt.Sprintf("heap %dMB<=%dMB %v", big.HeapUsedBytes>>20, big.HeapBoundBytes>>20, big.WithinBound),
	})
	return tbl, rep, nil
}

// simScaleBig runs the bounded-memory arm: Big.Chares wave elements with
// PackCold keeping only Big.PackCap live per PE. Heap growth is measured
// engine-and-all against a post-GC baseline, because the claim is "a
// million chares fit", not "a million chares minus the runtime fits".
func simScaleBig(w io.Writer, cfg SimScaleConfig) (*SimScaleBigReport, error) {
	big := cfg.Big
	if w != nil {
		fmt.Fprintf(w, "[sim-scale big chares=%d pack-cap=%d]\n", big.Chares, big.PackCap)
	}
	topo, _, err := simScaleTopo(big.PEs)
	if err != nil {
		return nil, err
	}
	baseline := heapInUse()
	prog := waveProgram(big.Chares, big.PEs, 1, big.Rounds, cfg.Scratch, cfg.HopCost)
	opts := sim.Options{PackCold: big.PackCap}
	e, err := sim.NewParallel(topo, prog, opts, big.Workers)
	if err != nil {
		return nil, err
	}
	afterBuild := heapInUse()
	start := time.Now()
	v, _, err := e.Run()
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	afterRun := heapInUse()
	used := afterBuild - baseline
	if r := afterRun - baseline; r > used {
		used = r
	}
	stats := e.Stats()
	rep := &SimScaleBigReport{
		Chares: big.Chares, PEs: big.PEs, PackCap: big.PackCap,
		Events: stats.Events, WallMS: ms(wall),
		Checksum:        fmt.Sprintf("%016x", v.(uint64)),
		ColdPacks:       stats.ColdPacks,
		ColdHydrates:    stats.ColdHydrates,
		PackedPeakBytes: stats.ColdBytes,
		HeapUsedBytes:   used,
		HeapBoundBytes:  big.HeapBoundBytes,
		WithinBound:     used <= big.HeapBoundBytes,
	}
	runtime.KeepAlive(e)
	return rep, nil
}

// heapInUse forces a GC and reports live heap bytes.
func heapInUse() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}
