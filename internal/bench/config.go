// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (Figure 3, Table 1, Figure 4,
// Table 2) plus the ablations called out in DESIGN.md, and formats them as
// the same rows/series the paper reports.
//
// Two measurement instruments are used (see DESIGN.md §5):
//
//   - The virtual-time engine (internal/sim) with Itanium-calibrated cost
//     models reproduces the paper's absolute scale and its shapes
//     deterministically; this is the "artificial latency" column/curve.
//   - The real-time runtime — in one process with the VMI delay device,
//     and in a two-node configuration over real TCP sockets — provides the
//     "real" validation pathway: the same program, wall-clock measured,
//     with the delay device standing in for the wide area exactly as in
//     the paper's simulated-Grid environment.
package bench

import (
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/leanmd"
	"gridmdo/internal/metrics"
	"gridmdo/internal/stencil"
)

// StencilConfig fixes the stencil workload for an experiment.
type StencilConfig struct {
	Width, Height int
	Steps, Warmup int
	Model         *stencil.CostModel
}

// MDConfig fixes the LeanMD workload for an experiment.
type MDConfig struct {
	NX, NY, NZ   int
	AtomsPerCell int
	Steps        int
	Warmup       int
	Model        *leanmd.CostModel
}

// Profile selects experiment scale.
type Profile struct {
	Name    string
	Stencil StencilConfig
	MD      MDConfig

	// Fig3Latencies is the artificial-latency sweep for Figure 3.
	Fig3Latencies []time.Duration
	// Fig4Latencies is the sweep for Figure 4.
	Fig4Latencies []time.Duration
	// RealLatency is the emulated NCSA–ANL one-way latency for the
	// Table 1/2 validation columns.
	RealLatency time.Duration

	// IrregularVertices sizes the irregular-mesh generality experiment.
	IrregularVertices int

	// Farm sizes the taskfarm-at-scale experiment (taskfarm-scale).
	Farm FarmConfig

	// Membership sizes the elastic-membership recovery experiment
	// (membership).
	Membership MembershipConfig

	// Gate sizes the gateway soak experiment (gate-soak).
	Gate GateConfig

	// Telemetry sizes the telemetry-plane acceptance experiment
	// (telemetry).
	Telemetry TelemetryConfig

	// SimScale sizes the parallel-engine scaling experiment (sim-scale).
	SimScale SimScaleConfig

	// Metrics, when non-nil, instruments every real-time runtime and TCP
	// stack the harness constructs (the Table 1/2 host and TCP columns).
	// The registry accumulates across runs; gridsim -metrics-out writes
	// its snapshot next to the CSV results.
	Metrics *metrics.Registry

	// TraceDir, when non-empty, attaches a fresh causal tracer to every
	// real-time run (host delay-device and TCP columns) and drops a
	// trace snapshot plus an overlap report per run into this directory.
	// Analyze the snapshots with cmd/gridtrace.
	TraceDir string
}

// rtOpts are the runtime options every real-time run of this profile
// shares.
func (p Profile) rtOpts() []core.Option {
	if p.Metrics == nil {
		return nil
	}
	return []core.Option{core.WithMetrics(p.Metrics)}
}

// PaperProfile reproduces the paper's exact workloads: a 2048×2048 mesh
// and the 216-cell / 3,024-pair LeanMD benchmark, with the paper's
// latency sweeps and the measured TeraGrid one-way latency of 1.725 ms.
func PaperProfile() Profile {
	return Profile{
		Name: "paper",
		Stencil: StencilConfig{
			Width: 2048, Height: 2048,
			Steps: 12, Warmup: 4,
			Model: stencil.DefaultModel(),
		},
		MD: MDConfig{
			NX: 6, NY: 6, NZ: 6,
			AtomsPerCell: 12, // numerics scale; time is charged at 200 model atoms
			Steps:        8, Warmup: 3,
			Model: leanmd.DefaultModel(),
		},
		Fig3Latencies:     msList(0, 1, 2, 4, 8, 16, 32),
		Fig4Latencies:     msList(1, 2, 4, 8, 16, 32, 64, 128, 256),
		RealLatency:       1725 * time.Microsecond,
		IrregularVertices: 60000,
		// One million 10ms tasks at 10µs assignment time: the single
		// master saturates at JT/AT = 1000 workers, the sweep runs two
		// decades past it. ~500 workers per dispatcher shard keeps each
		// shard at half its own knee.
		Farm: FarmConfig{
			Tasks: 1_000_000, TaskCost: 10 * time.Millisecond, AssignCost: 10 * time.Microsecond,
			Prefetch: 2, Batch: 64, CostSkew: 4,
			Workers:         []int{250, 500, 1000, 2000, 10000, 50000, 100000},
			WorkersPerShard: 500,
			Latency:         1725 * time.Microsecond,
		},
		// The same farm shape the chaos membership suite runs: small
		// enough to repeat per seed, long enough (Spin) that the kill
		// and the drain land squarely mid-run.
		// Workers must be a multiple of Nodes: block placement would
		// otherwise leave the last node (the kill victim) empty and the
		// kill would have nothing to recover.
		Membership: MembershipConfig{
			Nodes: 4, Tasks: 4000, Workers: 8, Prefetch: 2, Batch: 5,
			Shards: 2, Spin: 80000, EventAfterGrants: 100,
			RTO: 3 * time.Millisecond, RTOMax: 15 * time.Millisecond,
			Drop:  0.05,
			Seeds: []int64{1, 2, 3},
		},
		// The acceptance soak: 100k jobs from 1k connections with 10%
		// duplicate-key resubmits, then a 16-client flood against a
		// 256-deep tenant queue while a paced tenant submits every 5ms.
		// Flood concurrency is sized so the flood saturates the farm's
		// admission rate without monopolizing the host's cores — beyond
		// that the measurement degenerates into scheduler contention
		// between the in-process load generator and the server it drives.
		// The shallow MaxInflight makes the farm latency-bound (each task
		// crosses the 1ms inter-group hop, so drain ≈ MaxInflight/RTT):
		// the flood's cheap no-wait POSTs outrun the drain regardless of
		// host core count, the overload pools in the capped tenant queue,
		// and admission control must answer 429. The soak p99 bound is
		// Little's-law honest: 1000 waiting connections against a
		// few-kjob/s farm sit ≈ clients/throughput in queue.
		Gate: GateConfig{
			Procs: 8, Shards: 2, Batch: 4, Prefetch: 2, Spin: 20_000,
			MaxInflight: 4, SubmitBatch: 4,
			BaselineJobs: 2000, BaselineClients: 16,
			SoakJobs: 100_000, SoakClients: 1000, DupRate: 0.10,
			PacedJobs: 200, PacedEvery: 5 * time.Millisecond,
			FloodClients: 16, FloodQueue: 256,
			SoakP99Bound: time.Second,
			Seed:         1,
		},
		// Overhead is measured on the paper's own mesh so the per-step
		// time is large enough for a 2% bound to be meaningful, with the
		// agent reporting 5x faster than its default — a deliberately
		// unfavorable setting. The tracer uses the drained-ring capacity
		// the -telemetry deployment defaults to; the full post-mortem
		// ring is priced separately (its resident slots are GC scan work,
		// see trace.DrainedCapacity). Convergence and completeness run at 5%
		// report loss; re-convergence must happen within two full-snapshot
		// cadences. The SLO step uses a tight 8ms objective on a virtual
		// clock so the burn windows are seconds, not minutes.
		Telemetry: TelemetryConfig{
			Stencil: StencilConfig{
				Width: 2048, Height: 2048,
				Steps: 12, Warmup: 4,
			},
			Procs: 8, Objects: 64,
			Latency:  1725 * time.Microsecond,
			Interval: 100 * time.Millisecond,
			Runs:     12, OverheadBound: 0.02,
			ConvNodes: 16, ConvPeriods: 32,
			Drop: 0.05, DropLagMax: 8, // two full-snapshot cadences (FullEvery=4)
			Jobs: 200, CompletenessFloor: 0.95,
			SLOObjective: 8 * time.Millisecond, SLOBudget: 0.1,
			SLOFastWindow: 2 * time.Second, SLOSlowWindow: 8 * time.Second,
			SLOThreshold: 2,
			Seed:         1,
		},
		// The sweep crosses the WRONJ-style scaling questions for the
		// engine itself: thousands of PEs, tokens charged ~1 intra-hop of
		// model time each, enough host work per event that a multi-core
		// host can show real speedup. The big arm packs a million chares
		// through the PUP cold store with a small per-PE live set.
		SimScale: SimScaleConfig{
			PEs:         []int{1024, 2048, 4096},
			Workers:     []int{2, 4, 8},
			TokensPerPE: 2, Rounds: 400,
			CharesPerPE: 4, Scratch: 256,
			HopCost: 10 * time.Microsecond,
			Big: SimScaleBig{
				Chares: 1 << 20, PEs: 1024, Rounds: 64,
				PackCap: 48, Workers: 4,
				HeapBoundBytes: 1 << 31, // 2 GiB for a million chares
			},
		},
	}
}

// FastProfile is a scaled-down configuration for tests and testing.B
// benchmarks: the same experiment structure at a fraction of the cost.
func FastProfile() Profile {
	return Profile{
		Name: "fast",
		Stencil: StencilConfig{
			Width: 512, Height: 512,
			Steps: 8, Warmup: 3,
			Model: stencil.DefaultModel(),
		},
		MD: MDConfig{
			NX: 4, NY: 4, NZ: 4,
			AtomsPerCell: 6,
			Steps:        6, Warmup: 2,
			Model: leanmd.DefaultModel(),
		},
		Fig3Latencies:     msList(0, 2, 8, 32),
		Fig4Latencies:     msList(1, 8, 64, 256),
		RealLatency:       1725 * time.Microsecond,
		IrregularVertices: 6000,
		// Same knee structure as the paper profile at 1/16 the task count
		// and a 100-worker knee (JT/AT = 10ms/100µs).
		Farm: FarmConfig{
			Tasks: 60_000, TaskCost: 10 * time.Millisecond, AssignCost: 100 * time.Microsecond,
			Prefetch: 2, Batch: 32, CostSkew: 4,
			Workers:         []int{50, 100, 200, 400, 1600},
			WorkersPerShard: 50,
			Latency:         time.Millisecond,
		},
		Membership: MembershipConfig{
			Nodes: 3, Tasks: 1200, Workers: 6, Prefetch: 2, Batch: 5,
			Shards: 2, Spin: 20000, EventAfterGrants: 50,
			RTO: 3 * time.Millisecond, RTOMax: 15 * time.Millisecond,
			Drop:  0.05,
			Seeds: []int64{1},
		},
		// Same phase structure as the paper soak at 1/25 the job count.
		Gate: GateConfig{
			Procs: 4, Shards: 2, Batch: 4, Prefetch: 2, Spin: 20_000,
			MaxInflight: 4, SubmitBatch: 4,
			BaselineJobs: 400, BaselineClients: 8,
			SoakJobs: 4000, SoakClients: 64, DupRate: 0.10,
			PacedJobs: 50, PacedEvery: 5 * time.Millisecond,
			FloodClients: 16, FloodQueue: 64,
			SoakP99Bound: 500 * time.Millisecond,
			Seed:         1,
		},
		// Same structure at test scale. The small mesh makes the per-step
		// time noisy relative to the agent's cost, so the overhead bound
		// here is a flake guard, not the headline 2% claim — that is
		// asserted at paper scale (BENCH_telemetry.json).
		Telemetry: TelemetryConfig{
			Stencil: StencilConfig{
				Width: 512, Height: 512,
				Steps: 8, Warmup: 3,
			},
			Procs: 4, Objects: 16,
			Latency:  time.Millisecond,
			Interval: 100 * time.Millisecond,
			Runs:     2, OverheadBound: 0.25,
			ConvNodes: 6, ConvPeriods: 16,
			Drop: 0.05, DropLagMax: 8,
			Jobs: 60, CompletenessFloor: 0.9,
			SLOObjective: 8 * time.Millisecond, SLOBudget: 0.1,
			SLOFastWindow: 2 * time.Second, SLOSlowWindow: 8 * time.Second,
			SLOThreshold: 2,
			Seed:         1,
		},
		// Same structure at CI scale; the 1024-PE point is kept because
		// the sim-scale-smoke job asserts parallel speedup there.
		SimScale: SimScaleConfig{
			PEs:         []int{256, 1024},
			Workers:     []int{2, 4},
			TokensPerPE: 2, Rounds: 120,
			CharesPerPE: 4, Scratch: 256,
			HopCost: 10 * time.Microsecond,
			Big: SimScaleBig{
				Chares: 1 << 18, PEs: 1024, Rounds: 32,
				PackCap: 32, Workers: 4,
				HeapBoundBytes: 1 << 30, // 1 GiB for a quarter million chares
			},
		},
	}
}

func msList(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v) * time.Millisecond
	}
	return out
}

// stencilRow is one (processors, objects) configuration.
type stencilRow struct {
	Procs, Objects int
}

// table1Rows are the exact (P, V) rows of the paper's Table 1; the same
// V-per-P sets define the curves of Figure 3's sub-plots.
func table1Rows() []stencilRow {
	return []stencilRow{
		{2, 4}, {2, 16}, {2, 64},
		{4, 4}, {4, 16}, {4, 64},
		{8, 16}, {8, 64}, {8, 256},
		{16, 16}, {16, 64}, {16, 256},
		{32, 64}, {32, 256}, {32, 1024},
		{64, 64}, {64, 256}, {64, 1024},
	}
}

// figure3Virt gives the virtualization degrees plotted for each processor
// count in Figure 3.
func figure3Virt(procs int) []int {
	switch {
	case procs <= 4:
		return []int{4, 16, 64}
	case procs <= 16:
		return []int{16, 64, 256}
	default:
		return []int{64, 256, 1024}
	}
}

// figure4Procs are the processor counts of Figure 4 and Table 2.
func figure4Procs() []int { return []int{2, 4, 8, 16, 32, 64} }
