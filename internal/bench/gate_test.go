package bench

import (
	"io"
	"testing"
	"time"
)

// TestGateSoakSmoke runs the three-phase gateway experiment at toy
// scale: the structure (baseline → duplicate-key soak → flood-vs-paced
// backpressure) and every acceptance check must hold even when the
// sizes are tiny.
func TestGateSoakSmoke(t *testing.T) {
	// The shallow MaxInflight makes the farm latency-bound (each task
	// crosses the 1ms inter-group hop, so drain ≈ MaxInflight/RTT) and
	// pools the overload in the tenant queues, where admission control
	// sees it: cheap no-wait flood POSTs outrun the drain even on one
	// core, so the capped flood queue must overflow into 429s.
	p := FastProfile()
	p.Gate = GateConfig{
		Procs: 4, Shards: 2, Batch: 4, Prefetch: 2, Spin: 20_000,
		MaxInflight: 4, SubmitBatch: 4,
		BaselineJobs: 100, BaselineClients: 8,
		SoakJobs: 600, SoakClients: 32, DupRate: 0.10,
		PacedJobs: 20, PacedEvery: 2 * time.Millisecond,
		FloodClients: 8, FloodQueue: 16,
		SoakP99Bound: 500 * time.Millisecond,
		Seed:         1,
	}
	tbl, rep, err := GateSoak(io.Discard, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("table rows %d, want 4", len(tbl.Rows))
	}
	if rep.DoubleExecs != 0 {
		t.Errorf("%d double executions", rep.DoubleExecs)
	}
	if rep.Completed != rep.Unique {
		t.Errorf("completed %d != unique %d", rep.Completed, rep.Unique)
	}
	if rep.Soak.Duplicates == 0 {
		t.Error("soak phase never hit a duplicate key")
	}
	if rep.Backpressure.Flood429s == 0 {
		t.Error("flood tenant was never throttled")
	}
	if !rep.Checks.ok() {
		t.Errorf("checks failed: %+v", rep.Checks)
	}
}
