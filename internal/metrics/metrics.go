// Package metrics is GridMDO's runtime observability registry: counters,
// gauges, and fixed-bucket histograms that every layer — core scheduler,
// VMI devices, AMPI — registers at construction time and updates from its
// hot paths with plain atomic operations. The design splits cost by phase:
//
//   - Registration (Counter/Gauge/Histogram/…Func) allocates and takes the
//     registry lock; it happens while a runtime or device chain is built.
//   - Updates (Inc, Add, Set, Observe) are lock-free atomics on
//     pre-registered handles and perform zero allocations, so instrumented
//     hot paths cost the same with metrics on as a bare atomic counter.
//   - Collection (WriteProm, Snapshot) walks the registry under its lock
//     and additionally invokes Func metrics, which may themselves lock
//     their owner (e.g. vmi.Reliable's stats mutex) — scrape-time cost
//     only.
//
// Every handle type is nil-safe: methods on a nil *Counter, *Gauge, or
// *Histogram are no-ops, and registration methods on a nil *Registry
// return nil handles. A component therefore instruments unconditionally
// and the "metrics disabled" configuration costs one predicted branch per
// update, mirroring the trace package's nil-*Tracer convention.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric for exposition.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Label is one name dimension, rendered into the series identity at
// registration time so updates never touch strings.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The struct is padded to a
// cache line so per-PE counter arrays do not false-share.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the exposition to stay meaningful).
// Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (negative to decrease). Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark. Nil-safe.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value; 0 on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution of int64 observations. Bucket
// upper bounds are set at registration and never change; Observe is a
// linear scan over at most a couple dozen bounds followed by three atomic
// adds — no locks, no allocations.
type Histogram struct {
	bounds  []int64        // ascending upper bounds; implicit +Inf bucket after
	buckets []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; 0 on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Standard bucket layouts, chosen once so series from different runs and
// devices line up.
var (
	// BytesBuckets spans frame and batch sizes from a bare header to the
	// coalescing buffer cap.
	BytesBuckets = []int64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	// DurationBuckets spans handler and idle intervals, in nanoseconds,
	// from 1µs to 1s.
	DurationBuckets = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	// CountBuckets spans small cardinalities (batch sizes, queue depths).
	CountBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// entry is one registered series.
type entry struct {
	name   string
	labels string // rendered {k="v",…} or ""
	kind   Kind

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() int64 // Func metrics; replaces c/g
}

func (e *entry) id() string { return e.name + e.labels }

// Registry holds the registered series of one process. The zero value is
// not usable; call NewRegistry. A nil *Registry is a valid "metrics off"
// registry: registration returns nil handles and collection returns
// nothing.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byID    map[string]*entry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*entry)}
}

// renderLabels builds the canonical {k="v",…} suffix. Labels are sorted by
// key so the same logical series always has one identity.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// register returns the existing entry for (name, labels) or installs a new
// one built by mk. Re-registering under a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) register(name string, labels []Label, kind Kind, mk func() *entry) *entry {
	e := &entry{name: name, labels: renderLabels(labels), kind: kind}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.byID[e.id()]; ok {
		if prior.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %v (was %v)", e.id(), kind, prior.kind))
		}
		return prior
	}
	e = mk()
	e.name, e.labels, e.kind = name, renderLabels(labels), kind
	r.byID[e.id()] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter registers (or finds) a counter series. Nil-safe: a nil registry
// returns a nil handle, whose methods are no-ops.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, labels, KindCounter, func() *entry { return &entry{c: &Counter{}} }).c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, labels, KindGauge, func() *entry { return &entry{g: &Gauge{}} }).g
}

// Histogram registers (or finds) a histogram series with the given bucket
// upper bounds (ascending; a +Inf bucket is implicit). Bounds are fixed at
// first registration; later registrations under the same identity return
// the existing histogram regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, labels, KindHistogram, func() *entry {
		h := &Histogram{bounds: append([]int64(nil), bounds...)}
		h.buckets = make([]atomic.Int64, len(h.bounds)+1)
		return &entry{h: h}
	}).h
}

// CounterFunc registers a counter whose value is read from fn at
// collection time — the bridge for components that already keep their own
// counters (vmi.Reliable's stats, the runtime's per-PE atomics); the hot
// path pays nothing extra. Re-registering the same identity replaces fn,
// so a fresh run's closures supersede a finished run's.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.register(name, labels, KindCounter, func() *entry { return &entry{} })
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at collection time, with the
// same replacement semantics as CounterFunc.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.register(name, labels, KindGauge, func() *entry { return &entry{} })
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// sorted returns the entries ordered by (name, labels), plus each entry's
// fn pointer captured under the lock.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	es := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool {
		if es[i].name != es[j].name {
			return es[i].name < es[j].name
		}
		return es[i].labels < es[j].labels
	})
	return es
}

// value reads an entry's scalar value (counter or gauge).
func (e *entry) value() int64 {
	if e.fn != nil {
		return e.fn()
	}
	if e.c != nil {
		return e.c.Value()
	}
	if e.g != nil {
		return e.g.Value()
	}
	return 0
}
