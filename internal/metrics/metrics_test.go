package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("pe", "0"))
	b := r.Counter("x_total", L("pe", "0"))
	if a != b {
		t.Error("same (name, labels) returned distinct handles")
	}
	c := r.Counter("x_total", L("pe", "1"))
	if a == c {
		t.Error("distinct labels shared one handle")
	}
	// Label order must not affect identity: the rendering is sorted.
	d1 := r.Gauge("y", L("b", "2"), L("a", "1"))
	d2 := r.Gauge("y", L("a", "1"), L("b", "2"))
	if d1 != d2 {
		t.Error("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("series")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("series")
}

func TestFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("f_total", func() int64 { return 1 })
	r.CounterFunc("f_total", func() int64 { return 7 })
	if got := r.Snapshot().Value("f_total"); got != 7 {
		t.Errorf("after replacement value = %d, want 7 (fresh run's closure must win)", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5126 {
		t.Errorf("sum = %d", h.Sum())
	}
	snap := r.Snapshot()
	bs := snap.Series[0].Bucket
	// Cumulative: <=10 holds 2, <=100 holds 4, <=1000 holds 4; the fifth
	// observation lives only in the implicit +Inf bucket (Count).
	want := []int64{2, 4, 4}
	for i, b := range bs {
		if b.Count != want[i] {
			t.Errorf("bucket le=%d count = %d, want %d", b.LE, b.Count, want[i])
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", CountBuckets)
	r.CounterFunc("d", func() int64 { return 1 })
	r.GaugeFunc("e", func() int64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	g.SetMax(9)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles returned nonzero values")
	}
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if s := r.Snapshot(); len(s.Series) != 0 {
		t.Error("nil registry produced series")
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("pe", "0")).Add(3)
	r.Counter("a_total", L("pe", "1")).Add(4)
	r.Gauge("depth").Set(-2)
	r.Histogram("sz", []int64{8, 64}, L("dir", "out")).Observe(10)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE a_total counter\n",
		`a_total{pe="0"} 3` + "\n",
		`a_total{pe="1"} 4` + "\n",
		"# TYPE depth gauge\ndepth -2\n",
		"# TYPE sz histogram\n",
		`sz_bucket{dir="out",le="8"} 0` + "\n",
		`sz_bucket{dir="out",le="64"} 1` + "\n",
		`sz_bucket{dir="out",le="+Inf"} 1` + "\n",
		`sz_sum{dir="out"} 10` + "\n",
		`sz_count{dir="out"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per name, not per series.
	if strings.Count(out, "# TYPE a_total") != 1 {
		t.Error("duplicate TYPE lines for a_total")
	}
}

func TestSnapshotHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", L("pe", "0")).Add(2)
	r.Counter("c_total", L("pe", "1")).Add(5)
	r.Histogram("h", CountBuckets).Observe(3)
	snap := r.Snapshot()
	if got := snap.Value("c_total"); got != 7 {
		t.Errorf("Value summed %d, want 7", got)
	}
	if got := snap.Value("h"); got != 1 {
		t.Errorf("histogram Value (count) = %d, want 1", got)
	}
	if !snap.Has("c_total") || snap.Has("missing") {
		t.Error("Has misreported")
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("prom body missing series: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json body: %v", err)
	}
	if snap.Value("hits_total") != 1 {
		t.Error("json snapshot missing hits_total")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total")
	g := r.Gauge("hw")
	h := r.Histogram("obs", CountBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per-1 {
		t.Errorf("high-water = %d, want %d", g.Value(), workers*per-1)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d", h.Count())
	}
}

// TestUpdatesAllocateNothing pins the hot-path contract: updates on live
// and nil handles perform zero allocations.
func TestUpdatesAllocateNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Gauge.SetMax", func() { g.SetMax(9) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"nil Counter.Inc", func() { nilC.Inc() }},
		{"nil Gauge.Set", func() { nilG.Set(1) }},
		{"nil Histogram.Observe", func() { nilH.Observe(1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("tenant", "a"))
	g := r.Gauge("depth")
	h := r.Histogram("lat", CountBuckets)
	c.Add(3)
	g.Set(5)
	h.Observe(2)
	before := r.Snapshot()
	c.Add(4)
	g.Set(9)
	h.Observe(2)
	h.Observe(200)
	r.Counter("fresh_total").Inc() // appears only after the baseline
	delta := r.Snapshot().Sub(before)

	if got := delta.Value("reqs_total"); got != 4 {
		t.Errorf("counter delta %d, want 4", got)
	}
	// Gauges are point-in-time: Sub keeps the current reading.
	if got := delta.Value("depth"); got != 9 {
		t.Errorf("gauge after Sub %d, want 9", got)
	}
	if got := delta.Value("lat"); got != 2 {
		t.Errorf("histogram count delta %d, want 2", got)
	}
	for _, smp := range delta.Series {
		if smp.Name != "lat" {
			continue
		}
		if smp.Sum != 202 {
			t.Errorf("histogram sum delta %d, want 202", smp.Sum)
		}
		for _, b := range smp.Bucket {
			if b.Count < 0 {
				t.Errorf("negative bucket delta at le=%d", b.LE)
			}
		}
	}
	// Series new since the baseline pass through whole.
	if got := delta.Value("fresh_total"); got != 1 {
		t.Errorf("fresh series %d, want 1", got)
	}
	// Series only in the baseline are dropped.
	if delta.Sub(delta).Has("gone") {
		t.Error("phantom series")
	}
}

func TestSnapshotFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", L("tenant", "acme"), L("pe", "0")).Add(1)
	r.Counter("jobs_total", L("tenant", "initech")).Add(2)
	r.Counter("unlabeled_total").Add(3)
	snap := r.Snapshot()

	acme := snap.Filter(L("tenant", "acme"))
	if len(acme.Series) != 1 || acme.Value("jobs_total") != 1 {
		t.Errorf("tenant filter kept %d series, value %d", len(acme.Series), acme.Value("jobs_total"))
	}
	// Multiple labels must all match.
	if n := len(snap.Filter(L("tenant", "acme"), L("pe", "1")).Series); n != 0 {
		t.Errorf("conjunctive filter kept %d series", n)
	}
	if n := len(snap.Filter(L("tenant", "none")).Series); n != 0 {
		t.Errorf("unknown label kept %d series", n)
	}
}

func TestNegotiateFormat(t *testing.T) {
	cases := []struct {
		url, accept, want string
		wantErr           bool
	}{
		{url: "/metrics", want: "prom"},
		{url: "/metrics?format=json", want: "json"},
		{url: "/metrics?format=prom", want: "prom"},
		{url: "/metrics?format=xml", wantErr: true},
		{url: "/metrics", accept: "application/json", want: "json"},
		{url: "/metrics", accept: "text/plain", want: "prom"},
		// ?format= beats Accept.
		{url: "/metrics?format=prom", accept: "application/json", want: "prom"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", tc.url, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		got, err := NegotiateFormat(req)
		if tc.wantErr != (err != nil) {
			t.Errorf("%s Accept=%q: err %v", tc.url, tc.accept, err)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("%s Accept=%q = %q, want %q", tc.url, tc.accept, got, tc.want)
		}
	}

	// The handler turns a bad format into a 400, not a panic.
	rec := httptest.NewRecorder()
	NewRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=xml", nil))
	if rec.Code != 400 {
		t.Errorf("bad format status %d, want 400", rec.Code)
	}
	if rec.Header().Get("Vary") != "Accept" {
		t.Error("missing Vary: Accept")
	}
}
