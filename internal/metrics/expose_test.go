package metrics

import (
	"sort"
	"testing"
)

// mkSample builds a Sample literal for table tests without a registry.
func mkSample(name, labels, kind string, value int64) Sample {
	return Sample{Name: name, Labels: labels, Kind: kind, Value: value}
}

func TestSnapshotSubCounterResetClamps(t *testing.T) {
	// A counter that went backwards (source process restarted between
	// snapshots) must clamp to zero, not go negative.
	prev := Snapshot{Series: []Sample{mkSample("reqs_total", "", "counter", 100)}}
	cur := Snapshot{Series: []Sample{mkSample("reqs_total", "", "counter", 7)}}
	d := cur.Sub(prev)
	if got := d.Value("reqs_total"); got != 0 {
		t.Errorf("reset counter delta %d, want 0 (clamped)", got)
	}

	// Same for histogram counts, sums, and per-bucket counts.
	prevH := Snapshot{Series: []Sample{{
		Name: "lat", Kind: "histogram", Count: 50, Sum: 500,
		Bucket: []Bucket{{LE: 10, Count: 20}, {LE: 100, Count: 50}},
	}}}
	curH := Snapshot{Series: []Sample{{
		Name: "lat", Kind: "histogram", Count: 5, Sum: 40,
		Bucket: []Bucket{{LE: 10, Count: 2}, {LE: 100, Count: 5}},
	}}}
	d = curH.Sub(prevH)
	smp := d.Series[0]
	if smp.Count != 0 || smp.Sum != 0 {
		t.Errorf("reset histogram delta count=%d sum=%d, want 0/0", smp.Count, smp.Sum)
	}
	for _, b := range smp.Bucket {
		if b.Count != 0 {
			t.Errorf("reset bucket le=%d delta %d, want 0", b.LE, b.Count)
		}
	}
}

func TestSnapshotSubOneSidedSeries(t *testing.T) {
	prev := Snapshot{Series: []Sample{
		mkSample("gone_total", "", "counter", 9),
		mkSample("both_total", "", "counter", 1),
	}}
	cur := Snapshot{Series: []Sample{
		mkSample("both_total", "", "counter", 4),
		mkSample("fresh_total", "", "counter", 2),
	}}
	d := cur.Sub(prev)
	if d.Has("gone_total") {
		t.Error("series only in prev survived Sub")
	}
	if got := d.Value("fresh_total"); got != 2 {
		t.Errorf("series only in cur = %d, want 2 (pass through)", got)
	}
	if got := d.Value("both_total"); got != 3 {
		t.Errorf("shared series delta %d, want 3", got)
	}
}

func TestSnapshotSubBucketMismatch(t *testing.T) {
	// Re-bucketed histogram: no element-wise delta is meaningful, so the
	// current cumulative buckets pass through, while count/sum still
	// subtract.
	prev := Snapshot{Series: []Sample{{
		Name: "lat", Kind: "histogram", Count: 3, Sum: 30,
		Bucket: []Bucket{{LE: 10, Count: 1}},
	}}}
	cur := Snapshot{Series: []Sample{{
		Name: "lat", Kind: "histogram", Count: 8, Sum: 90,
		Bucket: []Bucket{{LE: 10, Count: 2}, {LE: 100, Count: 8}},
	}}}
	d := cur.Sub(prev)
	smp := d.Series[0]
	if smp.Count != 5 || smp.Sum != 60 {
		t.Errorf("count=%d sum=%d, want 5/60", smp.Count, smp.Sum)
	}
	if len(smp.Bucket) != 2 || smp.Bucket[0].Count != 2 || smp.Bucket[1].Count != 8 {
		t.Errorf("mismatched buckets not passed through: %+v", smp.Bucket)
	}
}

func TestSnapshotFilterEmpty(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("tenant", "x")).Inc()
	r.Counter("b_total").Inc()
	snap := r.Snapshot()

	// No labels: everything matches (the conjunction over zero terms).
	all := snap.Filter()
	if len(all.Series) != len(snap.Series) {
		t.Errorf("empty filter kept %d of %d series", len(all.Series), len(snap.Series))
	}

	// Filtering an empty snapshot yields an empty snapshot, not a panic.
	if n := len(Snapshot{}.Filter(L("tenant", "x")).Series); n != 0 {
		t.Errorf("filter of empty snapshot kept %d series", n)
	}
}

func TestSnapshotMerge(t *testing.T) {
	base := Snapshot{Series: []Sample{
		mkSample("a_total", "", "counter", 10),
		mkSample("depth", "", "gauge", 5),
		{Name: "lat", Kind: "histogram", Count: 4, Sum: 40,
			Bucket: []Bucket{{LE: 10, Count: 1}, {LE: 100, Count: 4}}},
	}}
	delta := Snapshot{Series: []Sample{
		mkSample("a_total", "", "counter", 3),
		mkSample("depth", "", "gauge", 2),
		{Name: "lat", Kind: "histogram", Count: 2, Sum: 25,
			Bucket: []Bucket{{LE: 10, Count: 1}, {LE: 100, Count: 2}}},
		mkSample("new_total", "", "counter", 7),
	}}
	m := base.Merge(delta)

	if got := m.Value("a_total"); got != 13 {
		t.Errorf("counter merged to %d, want 13", got)
	}
	// Gauges take the delta's (newer) reading, they do not add.
	if got := m.Value("depth"); got != 2 {
		t.Errorf("gauge merged to %d, want 2", got)
	}
	if got := m.Value("new_total"); got != 7 {
		t.Errorf("delta-only series merged to %d, want 7", got)
	}
	for _, smp := range m.Series {
		if smp.Name != "lat" {
			continue
		}
		if smp.Count != 6 || smp.Sum != 65 {
			t.Errorf("histogram merged count=%d sum=%d, want 6/65", smp.Count, smp.Sum)
		}
		if smp.Bucket[0].Count != 2 || smp.Bucket[1].Count != 6 {
			t.Errorf("histogram buckets merged to %+v", smp.Bucket)
		}
	}
	if !sort.SliceIsSorted(m.Series, func(i, j int) bool {
		a, b := m.Series[i], m.Series[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	}) {
		t.Error("merged snapshot lost canonical order")
	}

	// Merge is Sub's inverse: applying a registry's own delta to the
	// baseline reproduces the current snapshot (for counters/histograms;
	// gauges converge because Sub keeps the current reading).
	r := NewRegistry()
	c := r.Counter("x_total")
	h := r.Histogram("h", CountBuckets)
	g := r.Gauge("g")
	c.Add(2)
	h.Observe(3)
	g.Set(4)
	before := r.Snapshot()
	c.Add(5)
	h.Observe(7)
	g.Set(1)
	after := r.Snapshot()
	round := before.Merge(after.Sub(before))
	if got, want := round.Value("x_total"), after.Value("x_total"); got != want {
		t.Errorf("round-trip counter %d, want %d", got, want)
	}
	if got, want := round.Value("h"), after.Value("h"); got != want {
		t.Errorf("round-trip histogram count %d, want %d", got, want)
	}
	if got, want := round.Value("g"), after.Value("g"); got != want {
		t.Errorf("round-trip gauge %d, want %d", got, want)
	}
}

func TestSnapshotMergeBucketMismatch(t *testing.T) {
	base := Snapshot{Series: []Sample{{
		Name: "lat", Kind: "histogram", Count: 4, Sum: 40,
		Bucket: []Bucket{{LE: 10, Count: 4}},
	}}}
	delta := Snapshot{Series: []Sample{{
		Name: "lat", Kind: "histogram", Count: 2, Sum: 20,
		Bucket: []Bucket{{LE: 10, Count: 1}, {LE: 100, Count: 2}},
	}}}
	m := base.Merge(delta)
	smp := m.Series[0]
	if smp.Count != 6 || smp.Sum != 60 {
		t.Errorf("count=%d sum=%d, want 6/60", smp.Count, smp.Sum)
	}
	// The delta's newer bucket layout wins wholesale.
	if len(smp.Bucket) != 2 || smp.Bucket[1].LE != 100 {
		t.Errorf("bucket layout after mismatch merge: %+v", smp.Bucket)
	}
}
