package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Collection: Prometheus text exposition, structured JSON snapshots, and
// an HTTP handler serving both. Collection walks the registry under its
// lock and invokes Func metrics; a Func callback must not register new
// metrics (it would deadlock) — closures read their component's own state
// only.

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    int64 `json:"le"`    // upper bound; the +Inf bucket is omitted (implied by Count)
	Count int64 `json:"count"` // observations <= LE (cumulative)
}

// Sample is one series' state at snapshot time.
type Sample struct {
	Name   string   `json:"name"`
	Labels string   `json:"labels,omitempty"` // canonical {k="v",…} rendering
	Kind   string   `json:"kind"`
	Value  int64    `json:"value,omitempty"` // counters and gauges
	Count  int64    `json:"count,omitempty"` // histograms
	Sum    int64    `json:"sum,omitempty"`   // histograms
	Bucket []Bucket `json:"buckets,omitempty"`
}

// Snapshot is the full registry state at one instant, ordered by
// (name, labels). It is the structure the benchmark harness writes next
// to its results.
type Snapshot struct {
	Series []Sample `json:"series"`
}

// Value sums every series named name (across label sets); histograms
// contribute their observation count. Missing names return 0.
func (s Snapshot) Value(name string) int64 {
	var v int64
	for _, smp := range s.Series {
		if smp.Name != name {
			continue
		}
		if smp.Kind == KindHistogram.String() {
			v += smp.Count
		} else {
			v += smp.Value
		}
	}
	return v
}

// Has reports whether any series named name exists.
func (s Snapshot) Has(name string) bool {
	for _, smp := range s.Series {
		if smp.Name == name {
			return true
		}
	}
	return false
}

// Snapshot captures the registry. Nil-safe: a nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	es := r.sorted()
	snap := Snapshot{Series: make([]Sample, 0, len(es))}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range es {
		smp := Sample{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
		switch e.kind {
		case KindHistogram:
			var cum int64
			smp.Bucket = make([]Bucket, len(e.h.bounds))
			for i, le := range e.h.bounds {
				cum += e.h.buckets[i].Load()
				smp.Bucket[i] = Bucket{LE: le, Count: cum}
			}
			smp.Count = e.h.Count()
			smp.Sum = e.h.Sum()
		default:
			smp.Value = e.value()
		}
		snap.Series = append(snap.Series, smp)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): one `# TYPE` line per metric name, then each series.
// Histograms expand to cumulative `_bucket{le=…}` series plus `_sum` and
// `_count`. Nil-safe.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	es := r.sorted()
	r.mu.Lock()
	defer r.mu.Unlock()
	lastName := ""
	for _, e := range es {
		if e.name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
			lastName = e.name
		}
		switch e.kind {
		case KindHistogram:
			if err := writePromHistogram(w, e); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, e.labels, e.value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram series with the le label merged
// into any existing label set.
func writePromHistogram(w io.Writer, e *entry) error {
	withLE := func(le string) string {
		if e.labels == "" {
			return `{le="` + le + `"}`
		}
		return strings.TrimSuffix(e.labels, "}") + `,le="` + le + `"}`
	}
	var cum int64
	for i, bound := range e.h.bounds {
		cum += e.h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, withLE(fmt.Sprint(bound)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, withLE("+Inf"), e.h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", e.name, e.labels, e.h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, e.labels, e.h.Count())
	return err
}

// Handler serves the registry over HTTP: Prometheus text by default,
// the JSON snapshot when the request asks for it (Accept: application/json
// or ?format=json). Mount it wherever the process exposes diagnostics;
// cmd/gridnode serves it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			if err := r.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
