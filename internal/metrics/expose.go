package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Collection: Prometheus text exposition, structured JSON snapshots, and
// an HTTP handler serving both. Collection walks the registry under its
// lock and invokes Func metrics; a Func callback must not register new
// metrics (it would deadlock) — closures read their component's own state
// only.

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    int64 `json:"le"`    // upper bound; the +Inf bucket is omitted (implied by Count)
	Count int64 `json:"count"` // observations <= LE (cumulative)
}

// Sample is one series' state at snapshot time.
type Sample struct {
	Name   string   `json:"name"`
	Labels string   `json:"labels,omitempty"` // canonical {k="v",…} rendering
	Kind   string   `json:"kind"`
	Value  int64    `json:"value,omitempty"` // counters and gauges
	Count  int64    `json:"count,omitempty"` // histograms
	Sum    int64    `json:"sum,omitempty"`   // histograms
	Bucket []Bucket `json:"buckets,omitempty"`
}

// Snapshot is the full registry state at one instant, ordered by
// (name, labels). It is the structure the benchmark harness writes next
// to its results.
type Snapshot struct {
	Series []Sample `json:"series"`
}

// Value sums every series named name (across label sets); histograms
// contribute their observation count. Missing names return 0.
func (s Snapshot) Value(name string) int64 {
	var v int64
	for _, smp := range s.Series {
		if smp.Name != name {
			continue
		}
		if smp.Kind == KindHistogram.String() {
			v += smp.Count
		} else {
			v += smp.Value
		}
	}
	return v
}

// Has reports whether any series named name exists.
func (s Snapshot) Has(name string) bool {
	for _, smp := range s.Series {
		if smp.Name == name {
			return true
		}
	}
	return false
}

// Sub returns the delta snapshot s − prev: each series' counters (and
// histogram counts, sums, and buckets) minus the matching series in
// prev. Series absent from prev pass through unchanged; series present
// only in prev are dropped (they cannot have advanced). Gauges are
// point-in-time readings, not accumulations, so they keep s's value.
// A negative delta — the source counter was reset, as when a process
// restarts between snapshots — clamps to zero rather than underflowing;
// a histogram whose bucket layout changed between snapshots keeps s's
// cumulative buckets (there is no meaningful per-bucket delta across a
// re-bucketing). Bench reporters use this to isolate one phase of a
// longer run instead of hand-rolling per-counter subtraction; the
// telemetry agent uses it to ship compact deltas between full reports.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	type key struct{ name, labels string }
	old := make(map[key]Sample, len(prev.Series))
	for _, smp := range prev.Series {
		old[key{smp.Name, smp.Labels}] = smp
	}
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	out := Snapshot{Series: make([]Sample, 0, len(s.Series))}
	for _, smp := range s.Series {
		p, ok := old[key{smp.Name, smp.Labels}]
		if ok && smp.Kind == p.Kind && smp.Kind != KindGauge.String() {
			smp.Value = clamp(smp.Value - p.Value)
			smp.Count = clamp(smp.Count - p.Count)
			smp.Sum = clamp(smp.Sum - p.Sum)
			if len(smp.Bucket) == len(p.Bucket) {
				b := make([]Bucket, len(smp.Bucket))
				for i := range b {
					b[i] = Bucket{LE: smp.Bucket[i].LE, Count: clamp(smp.Bucket[i].Count - p.Bucket[i].Count)}
				}
				smp.Bucket = b
			}
		}
		out.Series = append(out.Series, smp)
	}
	return out
}

// Merge returns s with a delta applied — the inverse of Sub, used by the
// telemetry collector to roll a node's incremental reports back into an
// absolute view. Counters and histogram counts/sums/buckets add; gauges
// take the delta's value (a gauge in a delta is the newer point-in-time
// reading, not an increment); series present only in the delta append.
// Histogram buckets add element-wise when the layouts match and adopt
// the delta's layout otherwise (the source was re-bucketed; its newer
// shape wins). The result keeps Snapshot's canonical (name, labels)
// order regardless of either input's order.
func (s Snapshot) Merge(delta Snapshot) Snapshot {
	type key struct{ name, labels string }
	idx := make(map[key]int, len(s.Series))
	out := Snapshot{Series: make([]Sample, len(s.Series), len(s.Series)+len(delta.Series))}
	copy(out.Series, s.Series)
	for i, smp := range out.Series {
		idx[key{smp.Name, smp.Labels}] = i
	}
	for _, d := range delta.Series {
		i, ok := idx[key{d.Name, d.Labels}]
		if !ok || out.Series[i].Kind != d.Kind {
			if !ok {
				idx[key{d.Name, d.Labels}] = len(out.Series)
				out.Series = append(out.Series, d)
			} else {
				// The series changed kind at the source; the newer
				// registration wins wholesale.
				out.Series[i] = d
			}
			continue
		}
		smp := &out.Series[i]
		if d.Kind == KindGauge.String() {
			smp.Value = d.Value
			continue
		}
		smp.Value += d.Value
		smp.Count += d.Count
		smp.Sum += d.Sum
		if len(smp.Bucket) == len(d.Bucket) {
			b := make([]Bucket, len(smp.Bucket))
			for j := range b {
				b[j] = Bucket{LE: smp.Bucket[j].LE, Count: smp.Bucket[j].Count + d.Bucket[j].Count}
			}
			smp.Bucket = b
		} else {
			smp.Bucket = append([]Bucket(nil), d.Bucket...)
		}
	}
	sort.Slice(out.Series, func(i, j int) bool {
		a, b := out.Series[i], out.Series[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	return out
}

// Filter returns the subset of series whose label set includes every
// given label — the per-tenant view the gateway's /metrics endpoint
// serves. Labels render canonically at registration, so substring
// matching on the `k="v"` fragment is exact.
func (s Snapshot) Filter(labels ...Label) Snapshot {
	out := Snapshot{}
	for _, smp := range s.Series {
		ok := true
		for _, l := range labels {
			frag := l.Key + `="` + l.Value + `"`
			if !strings.Contains(smp.Labels, frag) {
				ok = false
				break
			}
		}
		if ok {
			out.Series = append(out.Series, smp)
		}
	}
	return out
}

// Snapshot captures the registry. Nil-safe: a nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	es := r.sorted()
	snap := Snapshot{Series: make([]Sample, 0, len(es))}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range es {
		smp := Sample{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
		switch e.kind {
		case KindHistogram:
			var cum int64
			smp.Bucket = make([]Bucket, len(e.h.bounds))
			for i, le := range e.h.bounds {
				cum += e.h.buckets[i].Load()
				smp.Bucket[i] = Bucket{LE: le, Count: cum}
			}
			smp.Count = e.h.Count()
			smp.Sum = e.h.Sum()
		default:
			smp.Value = e.value()
		}
		snap.Series = append(snap.Series, smp)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4). Nil-safe. Equivalent to r.Snapshot().WriteProm(w);
// both renderings share one implementation so a filtered or delta
// snapshot serializes exactly like the live registry.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Snapshot().WriteProm(w)
}

// WriteProm writes the snapshot in the Prometheus text exposition format
// (version 0.0.4): one `# TYPE` line per metric name, then each series.
// Histograms expand to cumulative `_bucket{le=…}` series plus `_sum` and
// `_count`. Snapshots are ordered by (name, labels), so series of one
// name group under one TYPE line.
func (s Snapshot) WriteProm(w io.Writer) error {
	lastName := ""
	for _, smp := range s.Series {
		if smp.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", smp.Name, smp.Kind); err != nil {
				return err
			}
			lastName = smp.Name
		}
		if smp.Kind == KindHistogram.String() {
			if err := writePromHistogram(w, smp); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", smp.Name, smp.Labels, smp.Value); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram series with the le label merged
// into any existing label set.
func writePromHistogram(w io.Writer, smp Sample) error {
	withLE := func(le string) string {
		if smp.Labels == "" {
			return `{le="` + le + `"}`
		}
		return strings.TrimSuffix(smp.Labels, "}") + `,le="` + le + `"}`
	}
	for _, b := range smp.Bucket {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", smp.Name, withLE(fmt.Sprint(b.LE)), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", smp.Name, withLE("+Inf"), smp.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", smp.Name, smp.Labels, smp.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", smp.Name, smp.Labels, smp.Count)
	return err
}

// NegotiateFormat resolves an exposition request to "prom" or "json":
// the explicit ?format= parameter wins (unknown values are an error),
// otherwise the Accept header decides, defaulting to Prometheus text.
// It is the single format authority behind every exposition handler in
// the repo — gridnode's /metrics and gridgate's per-tenant /metrics
// negotiate identically because they both call this.
func NegotiateFormat(req *http.Request) (string, error) {
	switch f := req.URL.Query().Get("format"); f {
	case "json", "prom":
		return f, nil
	case "":
	default:
		return "", fmt.Errorf("metrics: unknown format %q (want prom or json)", f)
	}
	if strings.Contains(req.Header.Get("Accept"), "application/json") {
		return "json", nil
	}
	return "prom", nil
}

// ServeSnapshot writes snap in the negotiated format with the matching
// Content-Type (and a Vary: Accept, since the body depends on it).
func ServeSnapshot(w http.ResponseWriter, req *http.Request, snap Snapshot) {
	w.Header().Set("Vary", "Accept")
	format, err := NegotiateFormat(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := snap.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := snap.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Handler serves the registry over HTTP: Prometheus text by default, the
// JSON snapshot on request (?format=json or Accept: application/json;
// ?format=prom forces the text form and unknown formats are a 400).
// Mount it wherever the process exposes diagnostics; cmd/gridnode serves
// it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ServeSnapshot(w, req, r.Snapshot())
	})
}
