package metrics

import "testing"

// Hot-path microbenchmarks. Run with -benchmem: every update must report
// 0 B/op, 0 allocs/op — the registry's reason to exist is that leaving
// metrics on costs a bare atomic op. BENCH_metrics.json records the
// results.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSetMax(b *testing.B) {
	g := NewRegistry().Gauge("bench_hw")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.SetMax(int64(i & 1023))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_ns", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 997)
	}
}
