package gate

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gridmdo/internal/metrics"
)

// The HTTP/JSON surface. Versioned under /v1; the shapes below are the
// wire contract the CI smoke and the soak harness drive with curl.
//
//	POST /v1/jobs                  submit (tenant, optional key, optional wait)
//	GET  /v1/jobs/{id}             status
//	GET  /v1/jobs/{id}/result      result; 409 until the job completes
//	GET  /v1/jobs/{id}/events      chunked status stream until terminal
//	GET  /metrics                  registry exposition; ?tenant= filters
//
// Status mapping: 400 malformed request, 403 unknown tenant, 404
// unknown job, 409 result not ready, 429 over quota (with Retry-After),
// 503 gateway closed.

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Tenant string `json:"tenant"`
	Key    string `json:"key,omitempty"`
	// Wait makes the submission long-poll: the response carries the
	// result (or failure) instead of returning 202 immediately.
	Wait bool `json:"wait,omitempty"`
}

// jobResponse is the JSON shape of every job-bearing reply.
type jobResponse struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	State     string   `json:"state"`
	Duplicate bool     `json:"duplicate,omitempty"`
	Value     *float64 `json:"value,omitempty"`
	Error     string   `json:"error,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (g *Gateway) jobResponse(j *Job, dup bool) jobResponse {
	state, value, errMsg := g.Status(j)
	r := jobResponse{ID: j.ID, Tenant: j.Tenant, State: state.String(), Duplicate: dup, Error: errMsg}
	if state == StateDone {
		v := value
		r.Value = &v
	}
	return r
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Handler returns the gate's HTTP mux.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", g.handleEvents)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var sr submitRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request body: " + err.Error()})
		return
	}
	if sr.Tenant == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant required"})
		return
	}
	j, dup, err := g.Submit(sr.Tenant, sr.Key)
	switch {
	case errors.Is(err, ErrUnknownTenant):
		writeJSON(w, http.StatusForbidden, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrOverQuota):
		// Backpressure reaches the socket here: the client owns the
		// retry, the gate does not buffer past the tenant's bound.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if sr.Wait {
		select {
		case <-j.Done:
		case <-req.Context().Done():
			return
		}
		writeJSON(w, http.StatusOK, g.jobResponse(j, dup))
		return
	}
	code := http.StatusAccepted
	if dup {
		code = http.StatusOK
	}
	writeJSON(w, code, g.jobResponse(j, dup))
}

func (g *Gateway) lookupJob(w http.ResponseWriter, req *http.Request) (*Job, bool) {
	j, ok := g.Lookup(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return nil, false
	}
	return j, true
}

func (g *Gateway) handleStatus(w http.ResponseWriter, req *http.Request) {
	if j, ok := g.lookupJob(w, req); ok {
		writeJSON(w, http.StatusOK, g.jobResponse(j, false))
	}
}

func (g *Gateway) handleResult(w http.ResponseWriter, req *http.Request) {
	j, ok := g.lookupJob(w, req)
	if !ok {
		return
	}
	switch state, _, errMsg := g.Status(j); state {
	case StateDone:
		writeJSON(w, http.StatusOK, g.jobResponse(j, false))
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: errMsg})
	default:
		// The job exists but has not finished: 409, not 404 — the
		// resource is there, its representation isn't ready.
		writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("job %s is %s", j.ID, state)})
	}
}

// handleEvents streams the job's state transitions as newline-delimited
// JSON over a chunked response: one event on connect, one per state
// change after, closing at the terminal state. Clients that would
// otherwise poll GET /v1/jobs/{id} hold this open instead.
func (g *Gateway) handleEvents(w http.ResponseWriter, req *http.Request) {
	j, ok := g.lookupJob(w, req)
	if !ok {
		return
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	emit := func() JobState {
		r := g.jobResponse(j, false)
		enc.Encode(r)
		if fl != nil {
			fl.Flush()
		}
		state, _, _ := g.Status(j)
		return state
	}
	if st := emit(); st == StateDone || st == StateFailed {
		return
	}
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	last := StateQueued
	for {
		select {
		case <-j.Done:
			emit()
			return
		case <-tick.C:
			// Poll for the queued→running edge; Done covers the
			// terminal edges without waking anything per-event.
			if st, _, _ := g.Status(j); st != last {
				last = st
				if st := emit(); st == StateDone || st == StateFailed {
					return
				}
			}
		case <-req.Context().Done():
			return
		}
	}
}

// handleMetrics serves the gateway's registry. ?tenant=name narrows the
// view to that tenant's labeled series — the per-tenant surface the
// admission dashboards scrape; format negotiation (Accept/?format=) is
// the registry handler's.
func (g *Gateway) handleMetrics(w http.ResponseWriter, req *http.Request) {
	snap := g.cfg.Metrics.Snapshot()
	if tenant := req.URL.Query().Get("tenant"); tenant != "" {
		if _, ok := g.tenants[tenant]; !ok {
			writeJSON(w, http.StatusForbidden, errorResponse{Error: ErrUnknownTenant.Error()})
			return
		}
		snap = snap.Filter(metrics.L("tenant", tenant))
	}
	metrics.ServeSnapshot(w, req, snap)
}
