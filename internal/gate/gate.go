// Package gate is the grid's front door: an HTTP/JSON ingress that
// accepts job submissions from external clients and routes them onto a
// live serve-mode taskfarm (internal/taskfarm/serve.go), streaming
// results back. It is the GridCompute submit/scan/retrieve model
// (SNIPPETS.md §3) recast onto message-driven objects — the farm masks
// the wide-area latency, the gate masks the farm from the clients.
//
// The gate's own contribution is edge discipline, the part MPICH-G2
// showed a grid runtime lives or dies by:
//
//   - Admission control: every job belongs to a configured tenant with
//     a bounded queue. A full queue answers 429 + Retry-After at the
//     socket instead of buffering without bound.
//   - Weighted fair queueing: a deficit-round-robin scheduler drains
//     tenant queues in weight proportion, so a flooding tenant cannot
//     starve a paced one.
//   - Idempotent resubmit: jobs may carry an idempotency key; a
//     duplicate submission returns the original job instead of running
//     twice, through a TTL'd dedup table that mirrors the reliability
//     layer's recvNext tombstones one level up the stack.
package gate

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gridmdo/internal/metrics"
)

// Submitter injects tasks into the live farm. *taskfarm.Service
// satisfies it structurally; the gate deliberately does not import the
// farm, so tests can drive the gateway against a synthetic executor.
type Submitter interface {
	Submit(n int) (lo int64, err error)
}

// TracedSubmitter is a Submitter that can stamp the injection message
// with a causal trace parent and report the message's ID.
// *taskfarm.Service satisfies it; when the gateway has an Observer and
// its Submitter implements this, every batch rides a traced injection so
// job span trees extend into the farm.
type TracedSubmitter interface {
	Submitter
	SubmitTraced(n int, parent uint64) (lo int64, msgID uint64, err error)
}

// Observer receives job lifecycle notifications — the hook the telemetry
// collector implements (structurally, like Submitter) to stitch HTTP-side
// job roots onto the runtime's span stream and feed SLO tracking. All
// methods are called under the gateway's mutex and must be cheap and
// non-blocking.
type Observer interface {
	// JobAdmitted allocates a trace root for a newly admitted job.
	JobAdmitted(jobID, tenant string) (root uint64)
	// JobInjected links the farm injection message under the job's root.
	JobInjected(root, msgID uint64)
	// JobDone closes the job's root span and records its SLO outcome.
	JobDone(jobID string, root uint64, tenant string, latency time.Duration, failed bool)
}

// JobState is a job's position in its lifecycle.
type JobState uint8

const (
	StateQueued  JobState = iota // admitted, waiting in the tenant queue
	StateRunning                 // injected into the farm
	StateDone                    // result available
	StateFailed                  // gateway or runtime failure
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Job is one unit of external work: a single farm task plus the edge
// bookkeeping. All mutable fields are guarded by the owning Gateway's
// mutex; Done is closed exactly once when the job reaches a terminal
// state.
type Job struct {
	ID     string
	Tenant string
	Key    string // idempotency key; "" if none

	State   JobState
	Seq     int64  // farm task sequence number, valid from StateRunning
	Root    uint64 // trace root span ID, 0 when no Observer is configured
	Value   float64
	Err     string
	Created time.Time
	Ended   time.Time

	Done chan struct{}
}

// TenantConfig declares one admitted tenant.
type TenantConfig struct {
	Name string
	// Weight is the tenant's DRR share; 0 means 1.
	Weight int
	// MaxQueue bounds the tenant's admission queue; a submission that
	// finds it full is rejected with ErrOverQuota. 0 means 1024.
	MaxQueue int
}

// Config assembles a Gateway.
type Config struct {
	Tenants []TenantConfig

	// MaxInflight bounds tasks submitted to the farm and not yet
	// completed — the backpressure boundary between the edge queues and
	// the farm's internal pipeline. 0 means 4096.
	MaxInflight int

	// SubmitBatch caps how many queued jobs one farm submission carries
	// (they get contiguous sequence numbers, amortizing the injection
	// message). 0 means 64.
	SubmitBatch int

	// IdemTTL is how long a completed job's idempotency key keeps
	// answering duplicates. 0 means 10 minutes.
	IdemTTL time.Duration

	// Metrics, when non-nil, receives the gate's per-tenant series.
	Metrics *metrics.Registry

	// Observer, when non-nil, receives job lifecycle hooks (admission,
	// farm injection, completion) for end-to-end tracing and SLO
	// accounting. The telemetry collector satisfies it.
	Observer Observer
}

func (c *Config) maxInflight() int {
	if c.MaxInflight <= 0 {
		return 4096
	}
	return c.MaxInflight
}

func (c *Config) submitBatch() int {
	if c.SubmitBatch <= 0 {
		return 64
	}
	return c.SubmitBatch
}

func (c *Config) idemTTL() time.Duration {
	if c.IdemTTL <= 0 {
		return 10 * time.Minute
	}
	return c.IdemTTL
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	ErrUnknownTenant = errors.New("gate: unknown tenant")
	ErrOverQuota     = errors.New("gate: tenant queue full")
	ErrClosed        = errors.New("gate: gateway closed")
)

// tenantMetrics are one tenant's labeled handles — registered once at
// construction (labels render at registration; updates are atomics).
type tenantMetrics struct {
	submitted *metrics.Counter
	completed *metrics.Counter
	rejected  *metrics.Counter
	dups      *metrics.Counter
	depth     *metrics.Gauge
	latency   *metrics.Histogram
}

func newTenantMetrics(reg *metrics.Registry, tenant string) *tenantMetrics {
	l := metrics.L("tenant", tenant)
	return &tenantMetrics{
		submitted: reg.Counter("gate_jobs_submitted_total", l),
		completed: reg.Counter("gate_jobs_completed_total", l),
		rejected:  reg.Counter("gate_jobs_rejected_total", l),
		dups:      reg.Counter("gate_jobs_duplicate_total", l),
		depth:     reg.Gauge("gate_queue_depth", l),
		latency:   reg.Histogram("gate_submit_result_latency_ns", metrics.DurationBuckets, l),
	}
}

// Gateway is the admission/dispatch core behind the HTTP surface.
type Gateway struct {
	cfg Config
	sub Submitter
	src JobSource

	mu      sync.Mutex
	tenants map[string]*tenantState
	jobs    map[string]*Job
	bySeq   map[int64]*Job
	idem    *idemTable
	nextID  int64
	running int // tasks in the farm, not yet completed
	closed  bool
	closErr string

	kick chan struct{} // wakes the pump
	stop chan struct{}
	wg   sync.WaitGroup

	inflight  *metrics.Gauge
	strayDone *metrics.Counter
}

type tenantState struct {
	cfg TenantConfig
	q   *tenantQueue
	met *tenantMetrics
}

// New builds a Gateway over the given Submitter and starts its ingest
// pump. Call Close when the runtime below it stops.
func New(cfg Config, sub Submitter) (*Gateway, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("gate: at least one tenant required")
	}
	if sub == nil {
		return nil, errors.New("gate: submitter required")
	}
	g := &Gateway{
		cfg:       cfg,
		sub:       sub,
		tenants:   make(map[string]*tenantState, len(cfg.Tenants)),
		jobs:      make(map[string]*Job),
		bySeq:     make(map[int64]*Job),
		idem:      newIdemTable(cfg.idemTTL()),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		inflight:  cfg.Metrics.Gauge("gate_inflight_tasks"),
		strayDone: cfg.Metrics.Counter("gate_stray_results_total"),
	}
	wfq := newWFQ()
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, errors.New("gate: tenant with empty name")
		}
		if _, dup := g.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("gate: duplicate tenant %q", tc.Name)
		}
		q := wfq.addTenant(tc)
		g.tenants[tc.Name] = &tenantState{
			cfg: tc,
			q:   q,
			met: newTenantMetrics(cfg.Metrics, tc.Name),
		}
	}
	g.src = wfq
	g.wg.Add(1)
	go g.pump()
	return g, nil
}

// Submit admits one job for tenant. A non-empty key makes the
// submission idempotent: a repeat within the TTL returns the original
// job and duplicate == true. Errors: ErrUnknownTenant, ErrOverQuota,
// ErrClosed.
func (g *Gateway) Submit(tenant, key string) (job *Job, duplicate bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, false, ErrClosed
	}
	ts, ok := g.tenants[tenant]
	if !ok {
		return nil, false, ErrUnknownTenant
	}
	now := time.Now()
	if key != "" {
		if id, ok := g.idem.lookup(tenant, key, now); ok {
			if j := g.jobs[id]; j != nil {
				ts.met.dups.Inc()
				return j, true, nil
			}
		}
	}
	if ts.q.len() >= ts.maxQueue() {
		ts.met.rejected.Inc()
		return nil, false, ErrOverQuota
	}
	g.nextID++
	j := &Job{
		ID:      fmt.Sprintf("j-%d", g.nextID),
		Tenant:  tenant,
		Key:     key,
		State:   StateQueued,
		Created: now,
		Done:    make(chan struct{}),
	}
	g.jobs[j.ID] = j
	if obs := g.cfg.Observer; obs != nil {
		j.Root = obs.JobAdmitted(j.ID, tenant)
	}
	if key != "" {
		g.idem.insert(tenant, key, j.ID, now)
	}
	ts.q.push(j)
	ts.met.submitted.Inc()
	ts.met.depth.Set(int64(ts.q.len()))
	g.kickPump()
	return j, false, nil
}

func (ts *tenantState) maxQueue() int {
	if ts.cfg.MaxQueue <= 0 {
		return 1024
	}
	return ts.cfg.MaxQueue
}

// Lookup returns a job by ID.
func (g *Gateway) Lookup(id string) (*Job, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	return j, ok
}

// Status returns a consistent copy of the job's mutable state.
func (g *Gateway) Status(j *Job) (state JobState, value float64, errMsg string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return j.State, j.Value, j.Err
}

// OnResult is the farm-completion hook; wire it to
// taskfarm.Service.OnResult. It runs on the root chare's PE goroutine,
// so it only flips maps and closes a channel.
func (g *Gateway) OnResult(seq int64, value float64) {
	g.mu.Lock()
	j, ok := g.bySeq[seq]
	if !ok {
		g.mu.Unlock()
		g.strayDone.Inc()
		return
	}
	delete(g.bySeq, seq)
	g.running--
	g.inflight.Set(int64(g.running))
	j.State = StateDone
	j.Value = value
	j.Ended = time.Now()
	ts := g.tenants[j.Tenant]
	ts.met.completed.Inc()
	ts.met.latency.Observe(j.Ended.Sub(j.Created).Nanoseconds())
	close(j.Done)
	if obs := g.cfg.Observer; obs != nil && j.Root != 0 {
		obs.JobDone(j.ID, j.Root, j.Tenant, j.Ended.Sub(j.Created), false)
	}
	g.mu.Unlock()
	g.kickPump()
}

// Close fails every non-terminal job and stops the pump. Safe to call
// more than once; wire it to the runtime's Lifecycle.OnExit.
func (g *Gateway) Close(cause error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.closErr = "gateway shut down"
	if cause != nil {
		g.closErr = cause.Error()
	}
	obs := g.cfg.Observer
	for _, j := range g.jobs {
		if j.State == StateQueued || j.State == StateRunning {
			j.State = StateFailed
			j.Err = g.closErr
			j.Ended = time.Now()
			close(j.Done)
			if obs != nil && j.Root != 0 {
				obs.JobDone(j.ID, j.Root, j.Tenant, j.Ended.Sub(j.Created), true)
			}
		}
	}
	for _, ts := range g.tenants {
		ts.q.drain()
		ts.met.depth.Set(0)
	}
	g.bySeq = map[int64]*Job{}
	g.running = 0
	g.inflight.Set(0)
	close(g.stop)
	g.mu.Unlock()
	g.wg.Wait()
}

func (g *Gateway) kickPump() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// pump is the single ingest loop: it drains the fair-queue source in
// DRR order, coalesces up to SubmitBatch jobs into one contiguous
// sequence-number allocation, and maps each job to its farm task. One
// goroutine, so the farm sees submissions in fair order and the
// MaxInflight bound is exact.
func (g *Gateway) pump() {
	defer g.wg.Done()
	for {
		select {
		case <-g.stop:
			return
		case <-g.kick:
		}
		for g.pumpOnce() {
		}
	}
}

// pumpOnce moves at most one batch from the queues into the farm,
// reporting whether it did any work.
func (g *Gateway) pumpOnce() bool {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return false
	}
	budget := g.cfg.maxInflight() - g.running
	if budget <= 0 {
		g.mu.Unlock()
		return false
	}
	if b := g.cfg.submitBatch(); budget > b {
		budget = b
	}
	jobs := g.src.Pop(budget)
	if len(jobs) == 0 {
		g.mu.Unlock()
		return false
	}
	for _, ts := range g.tenants {
		ts.met.depth.Set(int64(ts.q.len()))
	}
	// The farm's completion hook takes g.mu, so holding it across
	// Submit orders the seq→job mapping before any result can look it
	// up. Submit itself only posts a message — it never blocks on the
	// farm's progress.
	var lo int64
	var err error
	var msgID uint64
	obs := g.cfg.Observer
	if ts, ok := g.sub.(TracedSubmitter); ok && obs != nil {
		// The whole batch rides one injection message; parent it under
		// the first job's root and then adopt it into every batched
		// job's tree, so each job's trace reaches the farm.
		lo, msgID, err = ts.SubmitTraced(len(jobs), jobs[0].Root)
	} else {
		lo, err = g.sub.Submit(len(jobs))
	}
	if err != nil {
		now := time.Now()
		for _, j := range jobs {
			j.State = StateFailed
			j.Err = err.Error()
			j.Ended = now
			close(j.Done)
			if obs != nil && j.Root != 0 {
				obs.JobDone(j.ID, j.Root, j.Tenant, now.Sub(j.Created), true)
			}
		}
		g.mu.Unlock()
		return true
	}
	for i, j := range jobs {
		j.State = StateRunning
		j.Seq = lo + int64(i)
		g.bySeq[j.Seq] = j
		if obs != nil && j.Root != 0 && msgID != 0 {
			obs.JobInjected(j.Root, msgID)
		}
	}
	g.running += len(jobs)
	g.inflight.Set(int64(g.running))
	g.mu.Unlock()
	return true
}
