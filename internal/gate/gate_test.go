package gate

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gridmdo/internal/metrics"
)

// fakeFarm is a Submitter with a controllable completion side: auto
// mode completes each task asynchronously with value(seq); manual mode
// holds tasks until the test releases them.
type fakeFarm struct {
	mu      sync.Mutex
	next    int64
	auto    bool
	pending []int64
	done    func(seq int64, value float64)
}

func value(seq int64) float64 { return float64(seq) * 0.5 }

func (f *fakeFarm) Submit(n int) (int64, error) {
	f.mu.Lock()
	lo := f.next
	f.next += int64(n)
	auto, done := f.auto, f.done
	if !auto {
		for s := lo; s < lo+int64(n); s++ {
			f.pending = append(f.pending, s)
		}
	}
	f.mu.Unlock()
	if auto {
		go func() {
			for s := lo; s < lo+int64(n); s++ {
				done(s, value(s))
			}
		}()
	}
	return lo, nil
}

// release completes every held task.
func (f *fakeFarm) release() {
	f.mu.Lock()
	pend := f.pending
	f.pending = nil
	done := f.done
	f.mu.Unlock()
	for _, s := range pend {
		done(s, value(s))
	}
}

func newTestGate(t *testing.T, auto bool, cfg Config) (*Gateway, *fakeFarm) {
	t.Helper()
	farm := &fakeFarm{auto: auto}
	if cfg.Tenants == nil {
		cfg.Tenants = []TenantConfig{{Name: "acme"}, {Name: "initech", Weight: 3}}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	g, err := New(cfg, farm)
	if err != nil {
		t.Fatal(err)
	}
	farm.done = g.OnResult
	t.Cleanup(func() { g.Close(nil) })
	return g, farm
}

func post(t *testing.T, srv *httptest.Server, body string) (*http.Response, jobResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	b, _ := io.ReadAll(resp.Body)
	json.Unmarshal(b, &jr)
	return resp, jr
}

// TestHandlerTable drives the HTTP surface through its error and
// success paths.
func TestHandlerTable(t *testing.T) {
	g, farm := newTestGate(t, false, Config{
		Tenants:     []TenantConfig{{Name: "acme", MaxQueue: 1}, {Name: "initech"}},
		MaxInflight: 1,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// Prime: one job goes inflight (farm holds it), one fills the queue.
	_, first := post(t, srv, `{"tenant":"acme","key":"k-orig"}`)
	if first.ID == "" || first.State == "" {
		t.Fatalf("prime submit: %+v", first)
	}
	waitInflight(t, g, 1)
	if _, r := post(t, srv, `{"tenant":"acme"}`); r.ID == "" {
		t.Fatalf("queue-filling submit failed: %+v", r)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantCode   int
		wantSubstr string
		check      func(t *testing.T, resp *http.Response, body []byte)
	}{
		{name: "bad json", method: "POST", path: "/v1/jobs", body: `{"tenant": nope}`, wantCode: 400},
		{name: "unknown field", method: "POST", path: "/v1/jobs", body: `{"tenant":"acme","bogus":1}`, wantCode: 400},
		{name: "missing tenant", method: "POST", path: "/v1/jobs", body: `{}`, wantCode: 400, wantSubstr: "tenant required"},
		{name: "unknown tenant", method: "POST", path: "/v1/jobs", body: `{"tenant":"evil"}`, wantCode: 403, wantSubstr: "unknown tenant"},
		{
			name: "over quota", method: "POST", path: "/v1/jobs", body: `{"tenant":"acme"}`, wantCode: 429,
			check: func(t *testing.T, resp *http.Response, _ []byte) {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			},
		},
		{
			name: "duplicate key returns original", method: "POST", path: "/v1/jobs",
			body: `{"tenant":"acme","key":"k-orig"}`, wantCode: 200,
			check: func(t *testing.T, _ *http.Response, body []byte) {
				var jr jobResponse
				json.Unmarshal(body, &jr)
				if jr.ID != first.ID {
					t.Errorf("duplicate returned id %s, want original %s", jr.ID, first.ID)
				}
				if !jr.Duplicate {
					t.Error("duplicate flag not set")
				}
			},
		},
		{name: "status", method: "GET", path: "/v1/jobs/" + first.ID, wantCode: 200},
		{name: "result before completion", method: "GET", path: "/v1/jobs/" + first.ID + "/result", wantCode: 409},
		{name: "unknown job", method: "GET", path: "/v1/jobs/j-999999/result", wantCode: 404},
		{name: "metrics unknown tenant", method: "GET", path: "/metrics?tenant=evil", wantCode: 403},
		{name: "metrics bad format", method: "GET", path: "/metrics?format=xml", wantCode: 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("%s %s = %d, want %d (body %s)", tc.method, tc.path, resp.StatusCode, tc.wantCode, body)
			}
			if tc.wantSubstr != "" && !bytes.Contains(body, []byte(tc.wantSubstr)) {
				t.Errorf("body %q missing %q", body, tc.wantSubstr)
			}
			if tc.check != nil {
				tc.check(t, resp, body)
			}
		})
	}

	// Completion flips the 409 to a 200 with the task's value.
	farm.release()
	waitState(t, g, first.ID, StateDone)
	resp, err := http.Get(srv.URL + "/v1/jobs/" + first.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var jr jobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if resp.StatusCode != 200 || jr.Value == nil {
		t.Fatalf("result after completion: code %d, %+v", resp.StatusCode, jr)
	}
	if math.Abs(*jr.Value-value(0)) > 1e-12 {
		t.Errorf("value %v, want %v", *jr.Value, value(0))
	}
}

func waitInflight(t *testing.T, g *Gateway, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		n := g.running
		g.mu.Unlock()
		if n >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("inflight never reached %d", want)
}

func waitState(t *testing.T, g *Gateway, id string, want JobState) {
	t.Helper()
	j, ok := g.Lookup(id)
	if !ok {
		t.Fatalf("job %s unknown", id)
	}
	select {
	case <-j.Done:
	case <-time.After(5 * time.Second):
		t.Fatalf("job %s never finished", id)
	}
	if st, _, _ := g.Status(j); st != want {
		t.Fatalf("job %s state %v, want %v", id, st, want)
	}
}

// TestWaitSubmit long-polls a submission to completion.
func TestWaitSubmit(t *testing.T) {
	g, _ := newTestGate(t, true, Config{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	resp, jr := post(t, srv, `{"tenant":"acme","wait":true}`)
	if resp.StatusCode != 200 || jr.State != "done" || jr.Value == nil {
		t.Fatalf("wait submit: code %d, %+v", resp.StatusCode, jr)
	}
}

// TestEventsStream reads the chunked event stream through to the
// terminal state.
func TestEventsStream(t *testing.T) {
	g, farm := newTestGate(t, false, Config{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	_, jr := post(t, srv, `{"tenant":"acme"}`)
	waitInflight(t, g, 1)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + jr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		farm.release()
	}()
	var events []jobResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev jobResponse
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.State != "done" || last.Value == nil {
		t.Fatalf("terminal event %+v", last)
	}
}

// TestConcurrentSubmitRetrieve is the race test: many goroutines
// submitting (some with colliding idempotency keys) while others poll
// status and results.
func TestConcurrentSubmitRetrieve(t *testing.T) {
	g, _ := newTestGate(t, true, Config{
		Tenants: []TenantConfig{{Name: "acme", MaxQueue: 10000}, {Name: "initech", MaxQueue: 10000, Weight: 2}},
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	ids := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := "acme"
			if w%2 == 1 {
				tenant = "initech"
			}
			for i := 0; i < perWorker; i++ {
				// Half the submissions share keys across workers, so
				// duplicates hit concurrently with originals.
				key := fmt.Sprintf("k-%d-%d", w, i)
				if i%2 == 0 {
					key = fmt.Sprintf("shared-%d", i)
				}
				_, jr := post(t, srv, fmt.Sprintf(`{"tenant":%q,"key":%q}`, tenant, key))
				if jr.ID != "" {
					ids <- jr.ID
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				case id := <-ids:
					resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					resp, err = http.Get(srv.URL + "/v1/jobs/" + id + "/result")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	// Every submitted job must complete; duplicates never double-run.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		pending := g.running
		for _, ts := range g.tenants {
			pending += ts.q.len()
		}
		g.mu.Unlock()
		if pending == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := g.cfg.Metrics.Snapshot()
	submitted := snap.Value("gate_jobs_submitted_total")
	completed := snap.Value("gate_jobs_completed_total")
	if submitted == 0 || submitted != completed {
		t.Errorf("submitted %d, completed %d", submitted, completed)
	}
	if d := snap.Value("gate_queue_depth"); d != 0 {
		t.Errorf("queue depth %d after drain", d)
	}
}

// TestWFQProportions pins the DRR scheduler: backlogged tenants drain
// in weight proportion.
func TestWFQProportions(t *testing.T) {
	w := newWFQ()
	qa := w.addTenant(TenantConfig{Name: "a", Weight: 1})
	qb := w.addTenant(TenantConfig{Name: "b", Weight: 3})
	for i := 0; i < 400; i++ {
		qa.push(&Job{ID: fmt.Sprintf("a%d", i), Tenant: "a"})
		qb.push(&Job{ID: fmt.Sprintf("b%d", i), Tenant: "b"})
	}
	counts := map[string]int{}
	for counts["a"]+counts["b"] < 200 {
		batch := w.Pop(8)
		if len(batch) == 0 {
			break
		}
		for _, j := range batch {
			counts[j.Tenant]++
		}
	}
	a, b := counts["a"], counts["b"]
	if a == 0 || b == 0 {
		t.Fatalf("a=%d b=%d", a, b)
	}
	ratio := float64(b) / float64(a)
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("weight-3 tenant drained %dx weight-1 (a=%d b=%d), want ~3x", int(ratio), a, b)
	}
	// Starvation check: with b exhausted, a still drains fully.
	for {
		if batch := w.Pop(64); len(batch) == 0 {
			break
		}
	}
	if qa.len() != 0 || qb.len() != 0 {
		t.Errorf("queues not drained: a=%d b=%d", qa.len(), qb.len())
	}
}

// TestIdemTableTTL pins tombstone expiry.
func TestIdemTableTTL(t *testing.T) {
	tab := newIdemTable(time.Minute)
	now := time.Now()
	tab.insert("t", "k", "j-1", now)
	if id, ok := tab.lookup("t", "k", now.Add(30*time.Second)); !ok || id != "j-1" {
		t.Fatalf("live key: %q %v", id, ok)
	}
	if _, ok := tab.lookup("t", "k", now.Add(2*time.Minute)); ok {
		t.Fatal("expired key still resolves")
	}
	// No cross-tenant bleed.
	if _, ok := tab.lookup("other", "k", now); ok {
		t.Fatal("key leaked across tenants")
	}
	// Lazy sweep keeps the table bounded as expired keys churn.
	for i := 0; i < 1000; i++ {
		tab.insert("t", fmt.Sprintf("k%d", i), "j", now.Add(time.Duration(i)*2*time.Minute))
	}
	if n := tab.len(); n > 20 {
		t.Errorf("idem table retained %d entries across expiring churn", n)
	}
}
