package gate

import (
	"sync"
	"testing"
	"time"

	"gridmdo/internal/metrics"
)

// tracedFarm is a fakeFarm that also satisfies TracedSubmitter,
// recording the parent each batch was stamped with.
type tracedFarm struct {
	fakeFarm
	mu2     sync.Mutex
	parents []uint64
	msgSeq  uint64
}

func (f *tracedFarm) SubmitTraced(n int, parent uint64) (int64, uint64, error) {
	f.mu2.Lock()
	f.parents = append(f.parents, parent)
	f.msgSeq++
	msgID := f.msgSeq
	f.mu2.Unlock()
	lo, err := f.Submit(n)
	return lo, msgID, err
}

// recObserver records every hook invocation.
type recObserver struct {
	mu       sync.Mutex
	nextRoot uint64
	admitted map[string]uint64   // jobID -> root
	injected map[uint64][]uint64 // root -> msgIDs
	done     map[string]bool     // jobID -> failed
}

func newRecObserver() *recObserver {
	return &recObserver{
		admitted: make(map[string]uint64),
		injected: make(map[uint64][]uint64),
		done:     make(map[string]bool),
	}
}

func (o *recObserver) JobAdmitted(jobID, tenant string) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nextRoot++
	o.admitted[jobID] = o.nextRoot
	return o.nextRoot
}

func (o *recObserver) JobInjected(root, msgID uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.injected[root] = append(o.injected[root], msgID)
}

func (o *recObserver) JobDone(jobID string, root uint64, tenant string, latency time.Duration, failed bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.done[jobID] = failed
}

func TestObserverLifecycle(t *testing.T) {
	obs := newRecObserver()
	farm := &tracedFarm{fakeFarm: fakeFarm{auto: true}}
	g, err := New(Config{
		Tenants:  []TenantConfig{{Name: "acme"}},
		Metrics:  metrics.NewRegistry(),
		Observer: obs,
	}, farm)
	if err != nil {
		t.Fatal(err)
	}
	farm.done = g.OnResult
	defer g.Close(nil)

	j1, _, err := g.Submit("acme", "")
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := g.Submit("acme", "")
	if err != nil {
		t.Fatal(err)
	}
	if j1.Root == 0 || j2.Root == 0 || j1.Root == j2.Root {
		t.Fatalf("roots not stamped distinctly: %d, %d", j1.Root, j2.Root)
	}

	for _, j := range []*Job{j1, j2} {
		select {
		case <-j.Done:
		case <-time.After(5 * time.Second):
			t.Fatalf("job %s never completed", j.ID)
		}
	}

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.admitted) != 2 {
		t.Fatalf("admitted %d jobs, want 2", len(obs.admitted))
	}
	// Every job's root adopted an injection message (jobs may batch into
	// one message or ride two — both are valid).
	for id, root := range obs.admitted {
		if len(obs.injected[root]) == 0 {
			t.Errorf("job %s (root %d) never linked to an injection message", id, root)
		}
	}
	if failed, ok := obs.done[j1.ID]; !ok || failed {
		t.Errorf("job 1 done hook: ok=%v failed=%v, want success", ok, failed)
	}

	// The batch's traced submission carried a real job root as parent.
	farm.mu2.Lock()
	defer farm.mu2.Unlock()
	if len(farm.parents) == 0 {
		t.Fatal("SubmitTraced never used despite observer + traced submitter")
	}
	for _, p := range farm.parents {
		if p == 0 {
			t.Error("batch submitted with zero parent")
		}
	}
}

func TestObserverJobDoneFailedOnClose(t *testing.T) {
	obs := newRecObserver()
	// Manual farm: tasks are held, so jobs are non-terminal at Close.
	farm := &tracedFarm{}
	g, err := New(Config{
		Tenants:  []TenantConfig{{Name: "acme"}},
		Metrics:  metrics.NewRegistry(),
		Observer: obs,
	}, farm)
	if err != nil {
		t.Fatal(err)
	}
	farm.done = g.OnResult

	j, _, err := g.Submit("acme", "")
	if err != nil {
		t.Fatal(err)
	}
	g.Close(nil)
	obs.mu.Lock()
	failed, ok := obs.done[j.ID]
	obs.mu.Unlock()
	if !ok || !failed {
		t.Fatalf("close did not report job failed to observer: ok=%v failed=%v", ok, failed)
	}
}

func TestObserverWithPlainSubmitter(t *testing.T) {
	// An observer over a Submitter without SubmitTraced still traces
	// admission and completion; only the injection link is absent.
	obs := newRecObserver()
	g, _ := newTestGate(t, true, Config{Observer: obs})
	j, _, err := g.Submit("acme", "")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done:
	case <-time.After(5 * time.Second):
		t.Fatal("job never completed")
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if j.Root == 0 || len(obs.done) != 1 {
		t.Fatalf("plain-submitter observer: root=%d done=%d", j.Root, len(obs.done))
	}
	if len(obs.injected) != 0 {
		t.Fatalf("plain submitter cannot report injections, got %v", obs.injected)
	}
}
