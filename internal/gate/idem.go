package gate

import "time"

// Idempotency-key dedup. The reliability layer suppresses duplicate
// frames with per-peer recvNext cursors and tombstones for the
// out-of-order window; the gate applies the same idea one level up: a
// (tenant, key) pair maps to the job it first created, and the mapping
// survives for a TTL after creation so a client retrying through an
// unreliable path gets the original job back instead of a second
// execution. Expiry is lazy — entries are swept in small increments on
// the insert path, so there is no background goroutine to leak and the
// cost stays proportional to churn.

type idemEntry struct {
	jobID   string
	expires time.Time
}

type idemTable struct {
	ttl     time.Duration
	entries map[string]idemEntry
	sweep   []string // FIFO of keys in insertion order, for incremental expiry
}

func newIdemTable(ttl time.Duration) *idemTable {
	return &idemTable{ttl: ttl, entries: make(map[string]idemEntry)}
}

// idemKey joins tenant and key with a byte neither may contain, so
// ("a", "b\x00c") cannot collide with ("a\x00b", "c") — tenants are
// flag-configured names, keys are client data.
func idemKey(tenant, key string) string { return tenant + "\x00" + key }

// lookup reports the job an unexpired (tenant, key) maps to.
func (t *idemTable) lookup(tenant, key string, now time.Time) (string, bool) {
	e, ok := t.entries[idemKey(tenant, key)]
	if !ok || now.After(e.expires) {
		return "", false
	}
	return e.jobID, true
}

// insert records the mapping and opportunistically expires a few of the
// oldest entries. Insertion order approximates expiry order (the TTL is
// uniform), so checking the FIFO head is enough to keep the table from
// growing past live-entry count by more than a constant factor.
func (t *idemTable) insert(tenant, key, jobID string, now time.Time) {
	k := idemKey(tenant, key)
	t.entries[k] = idemEntry{jobID: jobID, expires: now.Add(t.ttl)}
	t.sweep = append(t.sweep, k)
	for i := 0; i < 2 && len(t.sweep) > 0; i++ {
		head := t.sweep[0]
		e, ok := t.entries[head]
		if ok && !now.After(e.expires) {
			break
		}
		if ok {
			delete(t.entries, head)
		}
		t.sweep = t.sweep[1:]
	}
}

// len reports the live entry count (expired entries still awaiting
// sweep included).
func (t *idemTable) len() int { return len(t.entries) }
