package gate

// Weighted fair queueing over tenant admission queues. The scheduler is
// deficit round robin: each tenant accumulates quantum × weight per
// round and spends one deficit unit per job dispatched, so over any
// window the dispatch ratio between backlogged tenants converges to
// their weight ratio — a flooding tenant fills its own bounded queue
// and gets 429s while a paced tenant's jobs keep flowing at its share.

// JobSource yields admitted jobs to the ingest pump in fair order. The
// Gateway's DRR scheduler is the production implementation; the
// interface exists so the pump (and its tests) depend only on "give me
// up to n jobs in the order policy says", not on the policy itself.
type JobSource interface {
	// Pop removes and returns up to max ready jobs. An empty result
	// means no tenant has queued work.
	Pop(max int) []*Job
}

// tenantQueue is one tenant's FIFO plus its DRR account.
type tenantQueue struct {
	jobs    []*Job
	weight  int
	deficit int
}

func (q *tenantQueue) len() int { return len(q.jobs) }

func (q *tenantQueue) push(j *Job) { q.jobs = append(q.jobs, j) }

func (q *tenantQueue) drain() { q.jobs, q.deficit = nil, 0 }

// wfq implements JobSource. It shares the Gateway's mutex discipline by
// construction: every method is called with the Gateway's lock held
// (push via Submit, Pop via the pump), so it carries no lock of its own.
type wfq struct {
	queues []*tenantQueue
	cursor int
}

func newWFQ() *wfq { return &wfq{} }

// addTenant registers a tenant's queue and returns it for direct
// push/len access by the admission path.
func (w *wfq) addTenant(tc TenantConfig) *tenantQueue {
	weight := tc.Weight
	if weight <= 0 {
		weight = 1
	}
	q := &tenantQueue{weight: weight}
	w.queues = append(w.queues, q)
	return q
}

// Pop implements JobSource via deficit round robin. The cursor persists
// across calls, so service resumes where the last batch left off rather
// than always favoring the first tenant.
func (w *wfq) Pop(max int) []*Job {
	if max <= 0 || len(w.queues) == 0 {
		return nil
	}
	var out []*Job
	// Each full cycle over the tenants refreshes deficits once; the
	// loop ends when the batch is full or a refresh cycle finds every
	// queue empty.
	for len(out) < max {
		progress := false
		for range w.queues {
			q := w.queues[w.cursor]
			w.cursor = (w.cursor + 1) % len(w.queues)
			if len(q.jobs) == 0 {
				// An idle tenant must not bank credit: DRR resets the
				// deficit when the queue goes empty, otherwise a
				// returning tenant bursts past its share.
				q.deficit = 0
				continue
			}
			q.deficit += q.weight
			n := q.deficit
			if n > len(q.jobs) {
				n = len(q.jobs)
			}
			if n > max-len(out) {
				n = max - len(out)
			}
			if n == 0 {
				continue
			}
			out = append(out, q.jobs[:n]...)
			q.jobs = q.jobs[n:]
			if len(q.jobs) == 0 {
				q.jobs, q.deficit = nil, 0
			} else {
				q.deficit -= n
			}
			progress = true
			if len(out) == max {
				break
			}
		}
		if !progress {
			break
		}
	}
	return out
}

var _ JobSource = (*wfq)(nil)
