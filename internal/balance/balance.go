// Package balance provides measurement-based load-balancing strategies
// for GridMDO's AtSync protocol (core.Strategy implementations): the
// classic greedy and refinement balancers of the Charm++ suite, and the
// paper's §6 grid-aware balancer, which "uses the strategy of simply
// distributing the chares that communicate across high-latency wide-area
// connections evenly among the processors within a cluster" and never
// migrates a chare to a remote cluster.
package balance

import (
	"container/heap"
	"sort"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/topology"
)

// peLoad tracks one PE's accumulating planned load.
type peLoad struct {
	pe   int
	load time.Duration
}

type peHeap []peLoad

func (h peHeap) Len() int { return len(h) }
func (h peHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].pe < h[j].pe // deterministic tie-break
}
func (h peHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *peHeap) Push(x any)   { *h = append(*h, x.(peLoad)) }
func (h *peHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// sortByLoadDesc orders elements by decreasing load with a deterministic
// identity tie-break.
func sortByLoadDesc(elems []core.ElemLoad) []core.ElemLoad {
	out := append([]core.ElemLoad(nil), elems...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load > out[j].Load
		}
		if out[i].Ref.Array != out[j].Ref.Array {
			return out[i].Ref.Array < out[j].Ref.Array
		}
		return out[i].Ref.Index < out[j].Ref.Index
	})
	return out
}

// intrinsicLoads converts measured loads (which include the measuring
// PE's speed factor) back to reference-machine cost, so plans remain
// correct on heterogeneous machines. With homogeneous PEs this is the
// identity.
func intrinsicLoads(stats *core.LBStats) []core.ElemLoad {
	out := append([]core.ElemLoad(nil), stats.Elems...)
	if stats.Topo == nil {
		return out
	}
	for i := range out {
		if s := stats.Topo.PESpeed(out[i].PE); s != 1 {
			out[i].Load = time.Duration(float64(out[i].Load) * s)
		}
	}
	return out
}

// speedOf reads a PE's speed factor, defaulting to 1 without a topology.
func speedOf(stats *core.LBStats, pe int) float64 {
	if stats.Topo == nil {
		return 1
	}
	return stats.Topo.PESpeed(pe)
}

// assign places elems (intrinsic loads, already sorted) onto the PEs in
// the heap, minimizing each element's effective completion time
// (assigned load divided by PE speed), and appends the necessary moves.
func assign(stats *core.LBStats, h *peHeap, elems []core.ElemLoad, moves []core.Move) []core.Move {
	for _, e := range elems {
		tgt := heap.Pop(h).(peLoad)
		if tgt.pe != e.PE {
			moves = append(moves, core.Move{Ref: e.Ref, ToPE: tgt.pe})
		}
		// The heap orders by effective time: accumulate load scaled by
		// the inverse speed of the hosting PE.
		tgt.load += time.Duration(float64(e.Load) / speedOf(stats, tgt.pe))
		heap.Push(h, tgt)
	}
	return moves
}

// Greedy is the classic Charm++ GreedyLB: elements sorted by decreasing
// load are assigned, one by one, to the PE with the least effective load
// (accounting for per-PE speed factors). It ignores cluster boundaries
// (and so may schedule chares across the WAN).
type Greedy struct{}

// Name implements core.Strategy.
func (Greedy) Name() string { return "greedy" }

// Plan implements core.Strategy.
func (Greedy) Plan(stats *core.LBStats) []core.Move {
	h := make(peHeap, 0, stats.NumPE)
	for pe := 0; pe < stats.NumPE; pe++ {
		h = append(h, peLoad{pe: pe})
	}
	heap.Init(&h)
	return assign(stats, &h, sortByLoadDesc(intrinsicLoads(stats)), nil)
}

// Refine is a RefineLB-style strategy: it moves elements only off PEs
// whose load exceeds the mean by Tolerance (default 5%), preferring the
// lightest movable elements, so it perturbs placement far less than
// Greedy.
type Refine struct {
	// Tolerance is the allowed overload fraction above the mean; zero
	// means 0.05.
	Tolerance float64
}

// Name implements core.Strategy.
func (Refine) Name() string { return "refine" }

// Plan implements core.Strategy.
func (r Refine) Plan(stats *core.LBStats) []core.Move {
	tol := r.Tolerance
	if tol == 0 {
		tol = 0.05
	}
	loads := make([]time.Duration, stats.NumPE)
	byPE := make([][]core.ElemLoad, stats.NumPE)
	var total time.Duration
	for _, e := range stats.Elems {
		loads[e.PE] += e.Load
		byPE[e.PE] = append(byPE[e.PE], e)
		total += e.Load
	}
	if stats.NumPE == 0 || total == 0 {
		return nil
	}
	mean := total / time.Duration(stats.NumPE)
	limit := mean + time.Duration(float64(mean)*tol)

	// Under-loaded PEs as a min-heap of current load.
	h := make(peHeap, 0, stats.NumPE)
	for pe := 0; pe < stats.NumPE; pe++ {
		h = append(h, peLoad{pe: pe, load: loads[pe]})
	}
	heap.Init(&h)

	var moves []core.Move
	for pe := 0; pe < stats.NumPE; pe++ {
		if loads[pe] <= limit {
			continue
		}
		// Lightest-first makes each move a small correction.
		elems := sortByLoadDesc(byPE[pe])
		for i := len(elems) - 1; i >= 0 && loads[pe] > limit; i-- {
			e := elems[i]
			tgt := heap.Pop(&h).(peLoad)
			if tgt.pe == pe || tgt.load+e.Load > limit {
				heap.Push(&h, tgt)
				break // no useful destination
			}
			moves = append(moves, core.Move{Ref: e.Ref, ToPE: tgt.pe})
			loads[pe] -= e.Load
			tgt.load += e.Load
			heap.Push(&h, tgt)
		}
	}
	return moves
}

// Grid is the paper's grid-aware balancer. Within each cluster,
// independently: the chares that communicate across the wide area
// ("border" chares, identified by WanMsgs > 0) are spread evenly over the
// cluster's PEs first; the remaining chares are then placed greedily on
// top. No chare ever changes cluster.
type Grid struct{}

// Name implements core.Strategy.
func (Grid) Name() string { return "grid" }

// Plan implements core.Strategy.
func (Grid) Plan(stats *core.LBStats) []core.Move {
	if stats.Topo == nil {
		return nil
	}
	var moves []core.Move
	elems := intrinsicLoads(stats)
	for c := 0; c < stats.Topo.NumClusters(); c++ {
		pes := stats.Topo.PEs(topology.ClusterID(c))
		var border, interior []core.ElemLoad
		for _, e := range elems {
			if int(stats.Topo.Cluster(e.PE)) != c {
				continue
			}
			if e.WanMsgs > 0 {
				border = append(border, e)
			} else {
				interior = append(interior, e)
			}
		}
		h := make(peHeap, 0, len(pes))
		for _, pe := range pes {
			h = append(h, peLoad{pe: pe})
		}
		heap.Init(&h)
		// Border chares first — "distributed evenly among the processors
		// within a cluster" — then interior chares greedily.
		moves = assign(stats, &h, sortByLoadDesc(border), moves)
		moves = assign(stats, &h, sortByLoadDesc(interior), moves)
	}
	return moves
}
