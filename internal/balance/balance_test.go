package balance

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

func mkStats(t *testing.T, numPE int, loads map[int][]time.Duration) *core.LBStats {
	t.Helper()
	topo, err := topology.TwoClusters(numPE, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := &core.LBStats{NumPE: numPE, Topo: topo}
	idx := 0
	for pe := 0; pe < numPE; pe++ {
		for _, l := range loads[pe] {
			s.Elems = append(s.Elems, core.ElemLoad{
				Ref: core.ElemRef{Array: 0, Index: idx}, PE: pe, Load: l,
			})
			idx++
		}
	}
	return s
}

// apply computes post-plan per-PE loads.
func apply(s *core.LBStats, moves []core.Move) []time.Duration {
	dest := make(map[core.ElemRef]int)
	for _, m := range moves {
		dest[m.Ref] = m.ToPE
	}
	loads := make([]time.Duration, s.NumPE)
	for _, e := range s.Elems {
		pe := e.PE
		if d, ok := dest[e.Ref]; ok {
			pe = d
		}
		loads[pe] += e.Load
	}
	return loads
}

func imbalance(loads []time.Duration) float64 {
	var max, sum time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}

func TestGreedyBalances(t *testing.T) {
	// Everything piled on PE 0.
	loads := map[int][]time.Duration{0: {}}
	for i := 0; i < 32; i++ {
		loads[0] = append(loads[0], time.Duration(1+i%5)*time.Millisecond)
	}
	s := mkStats(t, 4, loads)
	moves := Greedy{}.Plan(s)
	after := apply(s, moves)
	if ib := imbalance(after); ib > 1.2 {
		t.Errorf("greedy imbalance %v after plan", ib)
	}
	if len(moves) == 0 {
		t.Error("greedy produced no moves for a fully skewed input")
	}
}

// Property: greedy (LPT scheduling) achieves the provable makespan
// guarantee max(pmax, mean + (1-1/m)*p(m+1)), where p(m+1) is the
// (m+1)-th largest element. The critical PE's last-assigned element
// cannot be among the first m (those each land on an empty PE), so it is
// at most p(m+1); when it was assigned, its PE had the minimum load,
// which is at most the mean. The folklore 4/3 bound is relative to the
// true optimum and does NOT hold against max(mean, pmax) — e.g. five
// equal elements on four PEs force one PE to take two, and the optimum
// itself exceeds 4/3 of that lower bound.
func TestGreedyLPTBoundProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numPE := 2 * (1 + rng.Intn(4))
		loads := map[int][]time.Duration{}
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			pe := rng.Intn(numPE)
			loads[pe] = append(loads[pe], time.Duration(1+rng.Intn(1000))*time.Microsecond)
		}
		topo, err := topology.TwoClusters(numPE, 0)
		if err != nil {
			return false
		}
		s := &core.LBStats{NumPE: numPE, Topo: topo}
		idx := 0
		var total time.Duration
		var all []time.Duration
		for pe, ls := range loads {
			for _, l := range ls {
				s.Elems = append(s.Elems, core.ElemLoad{Ref: core.ElemRef{Index: idx}, PE: pe, Load: l})
				total += l
				all = append(all, l)
				idx++
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
		after := apply(s, Greedy{}.Plan(s))
		var maxA time.Duration
		for pe := 0; pe < numPE; pe++ {
			if after[pe] > maxA {
				maxA = after[pe]
			}
		}
		mean := float64(total) / float64(numPE)
		var pm1 time.Duration // (m+1)-th largest, 0 when n <= m
		if len(all) > numPE {
			pm1 = all[numPE]
		}
		bound := mean + (1-1/float64(numPE))*float64(pm1)
		if pmax := float64(all[0]); pmax > bound {
			bound = pmax
		}
		return float64(maxA) <= bound+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRefineMovesLittle(t *testing.T) {
	loads := map[int][]time.Duration{}
	// Nearly balanced: each PE has 10ms except PE 0 with 14ms.
	for pe := 0; pe < 4; pe++ {
		for i := 0; i < 10; i++ {
			loads[pe] = append(loads[pe], time.Millisecond)
		}
	}
	loads[0] = append(loads[0], 2*time.Millisecond, 2*time.Millisecond)
	s := mkStats(t, 4, loads)

	rMoves := Refine{}.Plan(s)
	gMoves := Greedy{}.Plan(s)
	if len(rMoves) >= len(gMoves) {
		t.Errorf("refine moved %d elements, greedy %d; refine should perturb less", len(rMoves), len(gMoves))
	}
	after := apply(s, rMoves)
	if ib := imbalance(after); ib > 1.25 {
		t.Errorf("refine left imbalance %v", ib)
	}
}

func TestRefineNoMovesWhenBalanced(t *testing.T) {
	loads := map[int][]time.Duration{}
	for pe := 0; pe < 4; pe++ {
		loads[pe] = []time.Duration{5 * time.Millisecond}
	}
	s := mkStats(t, 4, loads)
	if moves := (Refine{}).Plan(s); len(moves) != 0 {
		t.Errorf("refine moved %d elements on balanced input", len(moves))
	}
	// Degenerate: zero total load.
	z := mkStats(t, 2, map[int][]time.Duration{0: {0}})
	if moves := (Refine{}).Plan(z); len(moves) != 0 {
		t.Errorf("refine moved elements with zero load")
	}
}

func TestGridKeepsClustersAndSpreadsBorder(t *testing.T) {
	topo, err := topology.TwoClusters(8, 4*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := &core.LBStats{NumPE: 8, Topo: topo}
	// 8 border chares all on PE 3 (cluster 0), 8 on PE 4 (cluster 1),
	// plus interior chares scattered.
	idx := 0
	add := func(pe, wan int, load time.Duration) {
		s.Elems = append(s.Elems, core.ElemLoad{
			Ref: core.ElemRef{Array: 0, Index: idx}, PE: pe, Load: load, WanMsgs: wan,
		})
		idx++
	}
	for i := 0; i < 8; i++ {
		add(3, 5, time.Millisecond)
		add(4, 5, time.Millisecond)
	}
	for i := 0; i < 16; i++ {
		add(i%8, 0, 2*time.Millisecond)
	}
	moves := Grid{}.Plan(s)

	dest := make(map[core.ElemRef]int)
	for _, m := range moves {
		dest[m.Ref] = m.ToPE
	}
	borderPerPE := make(map[int]int)
	for _, e := range s.Elems {
		pe := e.PE
		if d, ok := dest[e.Ref]; ok {
			pe = d
		}
		// Invariant: no chare changes cluster.
		if topo.Cluster(pe) != topo.Cluster(e.PE) {
			t.Fatalf("grid LB moved %v across clusters (%d -> %d)", e.Ref, e.PE, pe)
		}
		if e.WanMsgs > 0 {
			borderPerPE[pe]++
		}
	}
	// 8 border chares over 4 PEs per cluster: exactly 2 each.
	for pe, n := range borderPerPE {
		if n != 2 {
			t.Errorf("PE %d holds %d border chares, want 2", pe, n)
		}
	}
	if len(borderPerPE) != 8 {
		t.Errorf("border chares on %d PEs, want all 8", len(borderPerPE))
	}
}

func TestGridNilTopo(t *testing.T) {
	if moves := (Grid{}).Plan(&core.LBStats{NumPE: 2}); moves != nil {
		t.Error("grid planned moves without a topology")
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []core.Strategy{Greedy{}, Refine{}, Grid{}} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}

func TestGreedySpeedAware(t *testing.T) {
	topo, err := topology.TwoClusters(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// PEs 2,3 run at half speed.
	if err := topo.SetClusterSpeed(1, 0.5); err != nil {
		t.Fatal(err)
	}
	s := &core.LBStats{NumPE: 4, Topo: topo}
	// 12 equal elements, all measured on fast PE 0.
	for i := 0; i < 12; i++ {
		s.Elems = append(s.Elems, core.ElemLoad{Ref: core.ElemRef{Index: i}, PE: 0, Load: time.Millisecond})
	}
	moves := Greedy{}.Plan(s)
	counts := make([]int, 4)
	dest := make(map[core.ElemRef]int)
	for _, m := range moves {
		dest[m.Ref] = m.ToPE
	}
	for _, e := range s.Elems {
		pe := e.PE
		if d, ok := dest[e.Ref]; ok {
			pe = d
		}
		counts[pe]++
	}
	// Completion-time balance over speeds (1,1,0.5,0.5): fast PEs should
	// get twice the elements of slow PEs (4,4,2,2).
	if counts[0] != 4 || counts[1] != 4 || counts[2] != 2 || counts[3] != 2 {
		t.Errorf("speed-aware distribution = %v, want [4 4 2 2]", counts)
	}
}

func TestIntrinsicLoadNormalization(t *testing.T) {
	topo, err := topology.TwoClusters(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetPESpeed(1, 0.5); err != nil {
		t.Fatal(err)
	}
	s := &core.LBStats{NumPE: 2, Topo: topo, Elems: []core.ElemLoad{
		{Ref: core.ElemRef{Index: 0}, PE: 0, Load: 2 * time.Millisecond},
		{Ref: core.ElemRef{Index: 1}, PE: 1, Load: 2 * time.Millisecond}, // measured on a half-speed PE
	}}
	out := intrinsicLoads(s)
	if out[0].Load != 2*time.Millisecond {
		t.Errorf("fast-PE load changed: %v", out[0].Load)
	}
	if out[1].Load != time.Millisecond {
		t.Errorf("slow-PE load not normalized: %v, want 1ms", out[1].Load)
	}
	// Without a topology, identity.
	s2 := &core.LBStats{NumPE: 2, Elems: s.Elems}
	out2 := intrinsicLoads(s2)
	if out2[1].Load != 2*time.Millisecond {
		t.Error("normalization applied without topology")
	}
}

// funcChare for integration testing.
type funcChare func(ctx *core.Ctx, entry core.EntryID, data any)

func (f funcChare) Recv(ctx *core.Ctx, entry core.EntryID, data any) { f(ctx, entry, data) }

// PUP implements core.Migratable with no state, so the balancers can
// migrate funcChare elements in integration tests.
func (f funcChare) PUP(*core.PUP) {}

// TestGreedyEndToEndImprovesMakespan runs a deliberately imbalanced
// program through an AtSync round on the virtual-time engine and checks
// the post-balance phase is faster than the pre-balance phase.
func TestGreedyEndToEndImprovesMakespan(t *testing.T) {
	topo, err := topology.TwoClusters(4, 0,
		topology.WithIntraLink(topology.Link{}),
		topology.WithInterLink(topology.Link{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var phase2Start, phase2 time.Duration
	prog := &core.Program{
		Arrays: []core.ArraySpec{{
			ID: 0, N: n,
			// All elements start on PE 0: maximal imbalance.
			Map: func(int, int) int { return 0 },
			New: func(i int) core.Chare {
				return funcChare(func(ctx *core.Ctx, entry core.EntryID, data any) {
					switch entry {
					case 0: // phase 1 work, then sync
						ctx.Charge(time.Millisecond)
						ctx.AtSync()
					case core.EntryResumeFromSync: // phase 2 work
						ctx.Contribute(float64(ctx.Time()), core.OpMax)
						ctx.Charge(time.Millisecond)
						ctx.Contribute(1.0, core.OpSum)
					}
				})
			},
		}},
		Start: func(ctx *core.Ctx) {
			for i := 0; i < n; i++ {
				ctx.Send(core.ElemRef{Array: 0, Index: i}, 0, nil)
			}
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) {
			switch seq {
			case 1:
				phase2Start = time.Duration(v.(float64))
			case 2:
				phase2 = ctx.Time() - phase2Start
				ctx.ExitWith(nil)
			}
		},
		LB: &core.LBConfig{Arrays: []core.ArrayID{0}, Strategy: Greedy{}},
	}
	e, err := sim.New(topo, prog, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Phase 1 ran all n elements serially on PE 0 (~n ms); after greedy
	// balancing, phase 2 runs them 4-wide (~n/4 ms plus protocol time).
	phase1 := time.Duration(n) * time.Millisecond
	if phase2 <= 0 || phase2 >= phase1/2 {
		t.Errorf("post-LB phase %v, pre-LB phase %v: balancing did not help", phase2, phase1)
	}
}
