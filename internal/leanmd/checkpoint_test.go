package leanmd

import (
	"bytes"
	"math"
	"testing"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

func runMDEngine(t *testing.T, p *Params, procs int, lat time.Duration) (*sim.Engine, *Result) {
	t.Helper()
	prog, _, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(procs, lat)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return e, v.(*Result)
}

// TestLeanMDCheckpointRestart runs 3 steps, checkpoints, restarts to 8
// steps on a different PE count, and compares against an uninterrupted
// 8-step run.
func TestLeanMDCheckpointRestart(t *testing.T) {
	mk := func() *Params {
		p := DefaultParams()
		p.NX, p.NY, p.NZ = 2, 2, 2
		p.AtomsPerCell = 8
		p.Warmup = 0
		return p
	}

	// Uninterrupted reference, capturing final positions.
	ref := make(map[int][]Vec3)
	pRef := mk()
	pRef.Steps = 8
	pRef.Collect = func(cell int, pos, vel []Vec3) { ref[cell] = pos }
	runMDEngine(t, pRef, 4, 2*time.Millisecond)

	// Interrupted run: 3 steps, checkpoint, continue to 8 on 2 PEs.
	p1 := mk()
	p1.Steps = 3
	e1, _ := runMDEngine(t, p1, 4, 2*time.Millisecond)
	ck, err := e1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := core.DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[int][]Vec3)
	p2 := mk()
	p2.Steps = 8
	p2.Collect = func(cell int, pos, vel []Vec3) { got[cell] = pos }
	prog2, g, err := BuildProgram(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck2.Install(prog2); err != nil {
		t.Fatal(err)
	}
	topo2, err := topology.TwoClusters(2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sim.New(topo2, prog2, sim.Options{MaxEvents: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}

	var maxErr float64
	for c := 0; c < g.NumCells; c++ {
		for i := range ref[c] {
			d := got[c][i].Sub(ref[c][i])
			if e := math.Sqrt(d.Norm2()); e > maxErr {
				maxErr = e
			}
		}
	}
	// Force-accumulation order may differ across decompositions of the
	// message schedule, so allow tiny float noise.
	if maxErr > 1e-9 {
		t.Errorf("restart diverged: max position error %v", maxErr)
	}
}

// TestLeanMDPackUnpackRoundTrip pins the migration invariant for both
// chare kinds: pack→unpack→pack is byte-identical, freshly constructed
// elements adopt the packed state, and unsafe points refuse to pack.
func TestLeanMDPackUnpackRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.NX, p.NY, p.NZ = 2, 2, 2
	p.AtomsPerCell = 8
	p.Warmup = 0
	g, err := NewGeometry(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := newCell(p, g, 3)
	c.gate.JumpTo(2)
	data, err := core.PUPPack(c)
	if err != nil {
		t.Fatal(err)
	}
	rc := newCell(p, g, 3)
	// Perturb so the test proves the packed state wins over InitAtoms.
	rc.pos[0].X += 1
	if err := core.PUPUnpack(rc, data); err != nil {
		t.Fatal(err)
	}
	if rc.gate.Step() != 2 || len(rc.pos) != 8 {
		t.Errorf("restored cell state: step=%d atoms=%d", rc.gate.Step(), len(rc.pos))
	}
	for i := range c.pos {
		if rc.pos[i] != c.pos[i] {
			t.Fatal("positions corrupted")
		}
	}
	data2, err := core.PUPPack(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("cell pack→unpack→pack not byte-identical")
	}

	ff := p.Field()
	o := newPair(p, g, ff, 5)
	o.gate.JumpTo(4)
	pd, err := core.PUPPack(o)
	if err != nil {
		t.Fatal(err)
	}
	po := newPair(p, g, ff, 5)
	if err := core.PUPUnpack(po, pd); err != nil {
		t.Fatal(err)
	}
	if po.gate.Step() != 4 {
		t.Error("pair step lost")
	}

	// A pair holding in-flight coordinates refuses to pack.
	o2 := newPair(p, g, ff, 6)
	o2.posA = []Vec3{{}}
	if _, err := core.PUPPack(o2); err == nil {
		t.Error("pair with in-flight coordinates packed")
	}
	if err := core.PUPUnpack(newCell(p, g, 1), []byte("junk")); err == nil {
		t.Error("junk cell restored")
	}
	if err := core.PUPUnpack(newPair(p, g, ff, 1), []byte("junk")); err == nil {
		t.Error("junk pair restored")
	}

	// A cell from a program with a different atom count refuses the state.
	pOther := DefaultParams()
	pOther.NX, pOther.NY, pOther.NZ = 2, 2, 2
	pOther.AtomsPerCell = 27
	pOther.Warmup = 0
	if err := core.PUPUnpack(newCell(pOther, g, 3), data); err == nil {
		t.Error("atom-count mismatch accepted")
	}
}
