package leanmd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gridmdo/internal/core"
	"gridmdo/internal/sim"
	"gridmdo/internal/topology"
)

func TestGeometryPaperCounts(t *testing.T) {
	g, err := NewGeometry(6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells != 216 {
		t.Fatalf("cells = %d, want 216", g.NumCells)
	}
	// The paper's benchmark: 216 cells and 3,024 cell pairs
	// (2,808 neighbor pairs + 216 self-pairs).
	if g.NumPairs() != 3024 {
		t.Fatalf("pairs = %d, want 3024", g.NumPairs())
	}
	selfs := 0
	for _, p := range g.Pairs {
		if p.Self() {
			selfs++
		}
	}
	if selfs != 216 {
		t.Fatalf("self-pairs = %d, want 216", selfs)
	}
	// Every cell participates in exactly 27 pair objects (26 neighbors +
	// self) and multicasts to all of them.
	for c := 0; c < g.NumCells; c++ {
		if got := len(g.PairsOf[c]); got != 27 {
			t.Fatalf("cell %d participates in %d pairs, want 27", c, got)
		}
	}
}

func TestGeometrySmallLatticeDedup(t *testing.T) {
	// 2×2×2 periodic lattice: wrap-around aliases many offsets; pairs
	// must still be unique.
	g, err := NewGeometry(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[CellPair]bool)
	for _, p := range g.Pairs {
		if p.A > p.B {
			t.Fatalf("unnormalized pair %+v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %+v", p)
		}
		seen[p] = true
	}
	// All 8 cells are mutual neighbors under wrap: C(8,2)+8 = 36 pairs.
	if g.NumPairs() != 36 {
		t.Fatalf("2x2x2 pairs = %d, want 36", g.NumPairs())
	}
	if _, err := NewGeometry(0, 1, 1); err == nil {
		t.Error("degenerate lattice accepted")
	}
}

func TestForceAntisymmetryProperty(t *testing.T) {
	ff := &ForceField{Epsilon: 0.1, Sigma: 0.2, Coulomb: 1, Cutoff: 1, Box: Vec3{4, 4, 4}}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ri := Vec3{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
		rj := Vec3{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
		qi, qj := rng.Float64()-0.5, rng.Float64()-0.5
		fij, uij := ff.PairInteraction(ri, rj, qi, qj)
		fji, uji := ff.PairInteraction(rj, ri, qj, qi)
		if uij != uji {
			return false
		}
		sum := fij.Add(fji)
		return math.Abs(sum.X) < 1e-12 && math.Abs(sum.Y) < 1e-12 && math.Abs(sum.Z) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForceCutoff(t *testing.T) {
	ff := &ForceField{Epsilon: 0.1, Sigma: 0.2, Coulomb: 1, Cutoff: 1, Box: Vec3{10, 10, 10}}
	f, u := ff.PairInteraction(Vec3{0, 0, 0}, Vec3{2, 0, 0}, 1, 1)
	if f != (Vec3{}) || u != 0 {
		t.Errorf("interaction beyond cutoff: f=%v u=%v", f, u)
	}
	// Minimum image: 9.5 apart in a box of 10 is only 0.5 away.
	f, _ = ff.PairInteraction(Vec3{0.25, 0, 0}, Vec3{9.75, 0, 0}, 1, 1)
	if f == (Vec3{}) {
		t.Error("minimum image not applied")
	}
	if f.X <= 0 {
		t.Errorf("repulsive-at-contact force points the wrong way: %v", f)
	}
}

func TestDecompositionMatchesDirect(t *testing.T) {
	p := DefaultParams()
	p.NX, p.NY, p.NZ = 3, 3, 3
	p.AtomsPerCell = 8
	g, err := NewGeometry(p.NX, p.NY, p.NZ)
	if err != nil {
		t.Fatal(err)
	}
	ff := p.Field()
	s := BuildSystem(p, g)

	fDirect, uDirect := DirectForces(ff, s)
	fDecomp, uDecomp := DecomposedForces(p, g, ff, s)

	if rel := math.Abs(uDirect-uDecomp) / math.Abs(uDirect); rel > 1e-10 {
		t.Errorf("potential energy mismatch: direct=%v decomposed=%v", uDirect, uDecomp)
	}
	var maxErr float64
	for i := range fDirect {
		d := fDirect[i].Sub(fDecomp[i])
		if e := math.Sqrt(d.Norm2()); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-9 {
		t.Errorf("max force error %v between direct and decomposed", maxErr)
	}
	// Newton's third law: forces sum to ~zero.
	var tot Vec3
	for _, f := range fDecomp {
		tot = tot.Add(f)
	}
	if math.Sqrt(tot.Norm2()) > 1e-9 {
		t.Errorf("net force %v, want ~0", tot)
	}
}

func runLeanMDSim(t *testing.T, p *Params, procs int, lat time.Duration) *Result {
	t.Helper()
	prog, _, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	var topo *topology.Topology
	if procs == 1 {
		topo, err = topology.Single(1)
	} else {
		topo, err = topology.TwoClusters(procs, lat)
	}
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(topo, prog, sim.Options{MaxEvents: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return v.(*Result)
}

func TestEnergyConservation(t *testing.T) {
	p := DefaultParams()
	p.NX, p.NY, p.NZ = 3, 3, 3
	p.AtomsPerCell = 8
	p.Steps = 40
	p.Warmup = 2
	res := runLeanMDSim(t, p, 4, time.Millisecond)
	if res.EWarm == 0 || res.EFinal == 0 {
		t.Fatalf("energies not recorded: %+v", res)
	}
	if d := res.Drift(); d > 0.05 {
		t.Errorf("energy drift %.4f over %d steps, want < 0.05 (EWarm=%v EFinal=%v)",
			d, p.Steps, res.EWarm, res.EFinal)
	}
}

func TestMomentumConservation(t *testing.T) {
	p := DefaultParams()
	p.NX, p.NY, p.NZ = 2, 2, 2
	p.AtomsPerCell = 8
	p.Steps = 20
	p.Warmup = 1
	var total Vec3
	var atoms int
	p.Collect = func(cell int, pos, vel []Vec3) {
		for _, v := range vel {
			total = total.Add(v)
		}
		atoms += len(vel)
	}
	runLeanMDSim(t, p, 1, 0)
	if atoms != 8*8 {
		t.Fatalf("collected %d atoms", atoms)
	}
	if m := math.Sqrt(total.Norm2()); m > 1e-9 {
		t.Errorf("net momentum %v after %d steps, want ~0", m, p.Steps)
	}
}

// TestAppMatchesSequentialIntegration replays the app's exact integration
// scheme sequentially and compares final positions.
func TestAppMatchesSequentialIntegration(t *testing.T) {
	p := DefaultParams()
	p.NX, p.NY, p.NZ = 2, 2, 2
	p.AtomsPerCell = 8
	p.Steps = 3
	p.Warmup = 0

	got := make(map[int][]Vec3)
	p.Collect = func(cell int, pos, vel []Vec3) { got[cell] = pos }
	runLeanMDSim(t, p, 4, 2*time.Millisecond)

	// Sequential replay: leapfrog with a backward seeding half-step.
	g, err := NewGeometry(p.NX, p.NY, p.NZ)
	if err != nil {
		t.Fatal(err)
	}
	ff := p.Field()
	s := BuildSystem(p, g)
	n := p.AtomsPerCell
	vel := make([]Vec3, 0, g.NumCells*n)
	for c := 0; c < g.NumCells; c++ {
		_, v := p.InitAtoms(c, g)
		vel = append(vel, v...)
	}
	vHalf := make([]Vec3, len(vel))
	for step := 0; step < p.Steps; step++ {
		f, _ := DecomposedForces(p, g, ff, s)
		if step == 0 {
			for i := range vHalf {
				vHalf[i] = vel[i].Sub(f[i].Scale(p.Dt / 2))
			}
		}
		for i := range s.Pos {
			vHalf[i] = vHalf[i].Add(f[i].Scale(p.Dt))
			s.Pos[i] = s.Pos[i].Add(vHalf[i].Scale(p.Dt))
		}
	}

	var maxErr float64
	for c := 0; c < g.NumCells; c++ {
		for i, pos := range got[c] {
			d := pos.Sub(s.Pos[c*n+i])
			if e := math.Sqrt(d.Norm2()); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 1e-9 {
		t.Errorf("max position error vs sequential integration: %v", maxErr)
	}
}

// TestLatencyImpactShape reproduces Figure 4's qualitative behavior: step
// time flat while latency is small relative to per-step compute, rising
// once it is not.
func TestLatencyImpactShape(t *testing.T) {
	base := DefaultParams()
	base.NX, base.NY, base.NZ = 4, 4, 4
	base.AtomsPerCell = 6
	base.Steps = 8
	base.Warmup = 3
	base.Model = DefaultModel()

	perStep := func(lat time.Duration) time.Duration {
		p := *base
		return runLeanMDSim(t, &p, 8, lat).PerStep
	}
	flat0 := perStep(time.Millisecond)
	flat1 := perStep(8 * time.Millisecond)
	steep := perStep(256 * time.Millisecond)
	if float64(flat1) > 1.3*float64(flat0) {
		t.Errorf("8ms latency not masked: %v vs %v", flat1, flat0)
	}
	// At 256ms the step is latency-bound: per-step ≈ the coordinate/force
	// round trip (2×256ms), still overlapped with — not added to — the
	// local compute (the paper's max(W, RTT) behavior).
	if steep < 500*time.Millisecond {
		t.Errorf("per-step %v below the 512ms round trip", steep)
	}
	if steep > 2*flat1+100*time.Millisecond {
		t.Errorf("per-step %v looks additive (compute + RTT), not overlapped", steep)
	}
}

func TestRealtimeLeanMD(t *testing.T) {
	p := DefaultParams()
	p.NX, p.NY, p.NZ = 2, 2, 2
	p.AtomsPerCell = 8
	p.Steps = 6
	p.Warmup = 2
	prog, _, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.TwoClusters(4, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(topo, prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := v.(*Result)
	if res.PerStep <= 0 || res.Total <= 0 {
		t.Errorf("timing missing: %+v", res)
	}
	if d := res.Drift(); d > 0.05 {
		t.Errorf("energy drift %v on real-time runtime", d)
	}
}

func TestCostModelScaling(t *testing.T) {
	m := DefaultModel()
	// Model atoms dominate regardless of actual counts.
	c1 := m.PairCost(8, 8, false)
	c2 := m.PairCost(100, 100, false)
	if c1 != c2 {
		t.Errorf("model-scaled costs differ: %v vs %v", c1, c2)
	}
	// Paper calibration: 3024 pairs × pair cost ≈ 8s.
	total := time.Duration(3024) * m.PairCost(200, 200, false)
	if total < 6*time.Second || total > 10*time.Second {
		t.Errorf("single-PE step cost %v, want ≈8s", total)
	}
	if m.PairCost(4, 4, true) >= m.PairCost(4, 4, false) {
		t.Error("self-pair should cost less than a full pair")
	}
	actual := &CostModel{PerInteractionNS: 10, ModelAtomsPerCell: 0}
	if actual.PairCost(2, 2, false) != time.Duration(4*10)*time.Nanosecond {
		t.Errorf("actual-count cost wrong: %v", actual.PairCost(2, 2, false))
	}
	if m.IntegrateCost(5) <= 0 {
		t.Error("non-positive integrate cost")
	}
}

func TestParamsValidation(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.NX = 0 },
		func(p *Params) { p.AtomsPerCell = 0 },
		func(p *Params) { p.Steps = 0 },
		func(p *Params) { p.Warmup = p.Steps },
		func(p *Params) { p.Dt = 0 },
	}
	for i, mod := range cases {
		p := DefaultParams()
		mod(p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}
