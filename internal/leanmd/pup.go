package leanmd

import (
	"gridmdo/internal/core"
)

// Serialization of cells and cell-pairs through the core PUP layer,
// enabling load balancing (elements migrate between PEs, including
// across gridnode processes) and checkpoint/restart.

// pupVec3s packs a []Vec3 as a flat float64 vector so the length checks
// and bit-exact float handling of core.PUP apply unchanged.
func pupVec3s(p *core.PUP, v *[]Vec3) {
	var flat []float64
	if !p.Unpacking() {
		flat = make([]float64, 0, 3*len(*v))
		for _, w := range *v {
			flat = append(flat, w.X, w.Y, w.Z)
		}
	}
	p.Float64s(&flat)
	if p.Unpacking() {
		if len(flat)%3 != 0 {
			p.Errorf("leanmd: vector payload of %d floats is not a multiple of 3", len(flat))
			return
		}
		out := make([]Vec3, len(flat)/3)
		for i := range out {
			out[i] = Vec3{flat[3*i], flat[3*i+1], flat[3*i+2]}
		}
		*v = out
	}
}

// PUP implements core.Migratable. Positions, the two velocity views of
// the leapfrog, and the step counter travel; geometry, charges, and
// section wiring rebuild from Params on the destination.
func (c *cell) PUP(p *core.PUP) {
	if !p.Unpacking() && c.gate.PendingFuture() > 0 {
		p.Errorf("leanmd: pack cell %d with %d buffered future forces", c.id, c.gate.PendingFuture())
		return
	}
	step, started := c.gate.Step(), c.started
	p.Int(&step)
	p.Bool(&started)
	pupVec3s(p, &c.pos)
	pupVec3s(p, &c.vHalf)
	pupVec3s(p, &c.vel)
	if p.Unpacking() {
		if len(c.pos) != c.p.AtomsPerCell {
			p.Errorf("leanmd: restore cell %d: %d atoms, program wants %d", c.id, len(c.pos), c.p.AtomsPerCell)
			return
		}
		if len(c.vHalf) != len(c.pos) || len(c.vel) != len(c.pos) {
			p.Errorf("leanmd: restore cell %d: velocity lengths %d/%d do not match %d atoms",
				c.id, len(c.vHalf), len(c.vel), len(c.pos))
			return
		}
		// Checkpoint restores only: a migrating cell carries its reduction
		// history, so being past the warmup round is fine mid-run.
		if p.Checkpointing() && c.p.Warmup > 0 && c.p.Warmup <= step {
			p.Errorf("leanmd: restore cell %d: warmup %d not after restored step %d", c.id, c.p.Warmup, step)
			return
		}
		c.gate.JumpTo(step)
		c.started = started
		c.done = step >= c.p.Steps
	}
}

// PUP implements core.Migratable. A pair's only durable state is its
// step counter; in-flight coordinates are never present at a sync or
// checkpoint quiescent point, and packing with any buffered is refused.
func (o *pairObj) PUP(p *core.PUP) {
	if !p.Unpacking() && (o.posA != nil || o.posB != nil || o.gate.PendingFuture() > 0) {
		p.Errorf("leanmd: pack pair %d with coordinates in flight", o.idx)
		return
	}
	step := o.gate.Step()
	p.Int(&step)
	if p.Unpacking() {
		o.gate.JumpTo(step)
	}
}

var (
	_ core.Migratable = (*cell)(nil)
	_ core.Migratable = (*pairObj)(nil)
)
