package leanmd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gridmdo/internal/core"
)

// Arrays of the LeanMD program.
const (
	ArrayCells core.ArrayID = 0
	ArrayPairs core.ArrayID = 1
)

// Entry methods.
const (
	EntryKick   core.EntryID = 0 // cells: begin time-stepping
	EntryCoords core.EntryID = 1 // pairs: a cell's coordinates
	EntryForces core.EntryID = 2 // cells: a pair's force contribution
)

// Params configures one LeanMD run.
type Params struct {
	NX, NY, NZ   int // cell lattice (paper: 6×6×6 = 216 cells)
	AtomsPerCell int // atoms actually simulated per cell

	Steps  int
	Warmup int // steps before steady-state timing begins (< Steps)

	Dt       float64 // integration step
	CellSize float64 // cell edge length; also the interaction cutoff
	Epsilon  float64 // LJ well depth
	Sigma    float64 // LJ length scale; 0 derives from lattice spacing
	Charge   float64 // alternating ±Charge per atom
	VelScale float64 // initial velocity scale
	Seed     int64

	// Model, if non-nil, charges modeled execution time (virtual-time
	// executor); see CostModel for the paper-scale substitution.
	Model *CostModel

	// Collect, if non-nil, receives each cell's final state (verification
	// hook; must be safe for concurrent use on the real-time runtime).
	Collect func(cell int, pos, vel []Vec3)
}

// DefaultParams returns the paper's benchmark geometry with
// reduced-unit physics that is stable under the default Dt.
func DefaultParams() *Params {
	return &Params{
		NX: 6, NY: 6, NZ: 6,
		AtomsPerCell: 32,
		Steps:        12,
		Warmup:       4,
		Dt:           0.002,
		CellSize:     1.0,
		Epsilon:      0.05,
		Charge:       0.05,
		VelScale:     0.08,
		Seed:         1,
	}
}

// Validate checks parameter consistency.
func (p *Params) Validate() error {
	if p.NX <= 0 || p.NY <= 0 || p.NZ <= 0 {
		return fmt.Errorf("leanmd: bad lattice %dx%dx%d", p.NX, p.NY, p.NZ)
	}
	if p.AtomsPerCell <= 0 {
		return fmt.Errorf("leanmd: %d atoms per cell", p.AtomsPerCell)
	}
	if p.Steps <= 0 {
		return fmt.Errorf("leanmd: %d steps", p.Steps)
	}
	if p.Warmup < 0 || p.Warmup >= p.Steps {
		return fmt.Errorf("leanmd: warmup %d must be in [0, steps=%d)", p.Warmup, p.Steps)
	}
	if p.Dt <= 0 || p.CellSize <= 0 {
		return fmt.Errorf("leanmd: non-positive dt or cell size")
	}
	return nil
}

// Field builds the force field implied by the parameters.
func (p *Params) Field() *ForceField {
	sigma := p.Sigma
	if sigma == 0 {
		k := sublatticeK(p.AtomsPerCell)
		sigma = 0.5 * p.CellSize / float64(k)
	}
	return &ForceField{
		Epsilon: p.Epsilon,
		Sigma:   sigma,
		Coulomb: 1,
		Cutoff:  p.CellSize,
		Box: Vec3{
			X: float64(p.NX) * p.CellSize,
			Y: float64(p.NY) * p.CellSize,
			Z: float64(p.NZ) * p.CellSize,
		},
	}
}

func sublatticeK(n int) int {
	k := 1
	for k*k*k < n {
		k++
	}
	return k
}

// Charges builds the deterministic alternating charge pattern shared by
// every cell (so pair objects derive it locally instead of shipping it).
func (p *Params) Charges() []float64 {
	q := make([]float64, p.AtomsPerCell)
	for i := range q {
		if i%2 == 0 {
			q[i] = p.Charge
		} else {
			q[i] = -p.Charge
		}
	}
	return q
}

// InitAtoms places a cell's atoms on a jittered sub-lattice inside the
// cell and draws small velocities, deterministically from (Seed, cell).
func (p *Params) InitAtoms(cell int, g *Geometry) (pos, vel []Vec3) {
	rng := rand.New(rand.NewSource(p.Seed*1_000_003 + int64(cell)))
	x, y, z := g.coords(cell)
	origin := Vec3{float64(x) * p.CellSize, float64(y) * p.CellSize, float64(z) * p.CellSize}
	k := sublatticeK(p.AtomsPerCell)
	spacing := p.CellSize / float64(k)
	jitter := 0.05 * spacing

	pos = make([]Vec3, p.AtomsPerCell)
	vel = make([]Vec3, p.AtomsPerCell)
	var mean Vec3
	for i := 0; i < p.AtomsPerCell; i++ {
		ix, iy, iz := i%k, (i/k)%k, i/(k*k)
		pos[i] = origin.Add(Vec3{
			(float64(ix)+0.5)*spacing + jitter*(2*rng.Float64()-1),
			(float64(iy)+0.5)*spacing + jitter*(2*rng.Float64()-1),
			(float64(iz)+0.5)*spacing + jitter*(2*rng.Float64()-1),
		})
		vel[i] = Vec3{
			p.VelScale * (2*rng.Float64() - 1),
			p.VelScale * (2*rng.Float64() - 1),
			p.VelScale * (2*rng.Float64() - 1),
		}
		mean = mean.Add(vel[i])
	}
	mean = mean.Scale(1 / float64(p.AtomsPerCell))
	for i := range vel {
		vel[i] = vel[i].Sub(mean) // zero net momentum per cell
	}
	return pos, vel
}

// coordMsg carries one cell's positions to a pair object.
type coordMsg struct {
	From cellID
	Step int
	Pos  []Vec3
}

// PayloadBytes implements core.Sizer.
func (c coordMsg) PayloadBytes() int { return 16 + 24*len(c.Pos) }

// forceMsg carries a pair's force contribution back to one cell.
type forceMsg struct {
	Step int
	F    []Vec3
	U    float64 // this cell's share of the pair potential energy
}

// PayloadBytes implements core.Sizer.
func (f forceMsg) PayloadBytes() int { return 24 + 24*len(f.F) }

// Result is the run outcome delivered through ExitWith.
type Result struct {
	EWarm    float64       // total energy at the warmup step
	EFinal   float64       // total energy at the last step
	PerStep  time.Duration // steady-state time per step
	Total    time.Duration
	Steps    int
	Warmup   int
	Cells    int
	Pairs    int
	WarmupAt time.Duration
	FinishAt time.Duration
}

// Drift reports the relative energy drift between warmup and finish.
func (r *Result) Drift() float64 {
	if r.EWarm == 0 {
		return math.Abs(r.EFinal - r.EWarm)
	}
	return math.Abs(r.EFinal-r.EWarm) / math.Abs(r.EWarm)
}

// cell is one spatial-decomposition chare.
type cell struct {
	p  *Params
	g  *Geometry
	id cellID

	pos, vHalf, vel []Vec3
	q               []float64

	section *core.Section // this cell's pair objects

	gate    *core.StepGate
	fAcc    []Vec3
	uAcc    float64
	started bool
	done    bool
}

func newCell(p *Params, g *Geometry, id cellID) *cell {
	pos, vel := p.InitAtoms(id, g)
	c := &cell{
		p: p, g: g, id: id,
		pos: pos, vel: vel,
		vHalf: make([]Vec3, len(pos)),
		q:     p.Charges(),
		fAcc:  make([]Vec3, len(pos)),
	}
	refs := make([]core.ElemRef, 0, len(g.PairsOf[id]))
	for _, pi := range g.PairsOf[id] {
		refs = append(refs, core.ElemRef{Array: ArrayPairs, Index: pi})
	}
	c.section = core.NewSection(refs...)
	c.gate = core.NewStepGate(len(refs))
	return c
}

func (c *cell) multicastCoords(ctx *core.Ctx) {
	// Snapshot the positions: in-process delivery passes the payload by
	// reference, and this cell mutates pos on its next integration while
	// pair objects (possibly on other PEs) are still reading it.
	snap := append([]Vec3(nil), c.pos...)
	ctx.Multicast(c.section, EntryCoords, coordMsg{From: c.id, Step: c.gate.Step(), Pos: snap})
}

// Recv implements core.Chare.
func (c *cell) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	switch entry {
	case EntryKick:
		c.multicastCoords(ctx)
	case EntryForces:
		f := data.(forceMsg)
		if c.done {
			return
		}
		if _, ok := c.gate.Deliver(f.Step, f); ok {
			c.accumulate(f)
			c.tryIntegrate(ctx)
		}
	default:
		panic(fmt.Sprintf("leanmd: cell got unknown entry %d", entry))
	}
}

func (c *cell) accumulate(f forceMsg) {
	for i, fv := range f.F {
		c.fAcc[i] = c.fAcc[i].Add(fv)
	}
	c.uAcc += f.U
}

func (c *cell) tryIntegrate(ctx *core.Ctx) {
	for c.gate.Ready() && !c.done {
		energy := c.integrate(ctx)
		pend := c.gate.Advance()
		step := c.gate.Step()

		if step == c.p.Warmup && c.p.Warmup > 0 {
			ctx.Contribute(energy, core.OpSum)
		}
		if step == c.p.Steps {
			c.done = true
			if c.p.Collect != nil {
				c.p.Collect(c.id, append([]Vec3(nil), c.pos...), append([]Vec3(nil), c.vel...))
			}
			ctx.Contribute(energy, core.OpSum)
			return
		}
		c.multicastCoords(ctx)
		for _, m := range pend {
			c.accumulate(m.(forceMsg))
		}
	}
}

// integrate performs one velocity-Verlet (leapfrog) step with the forces
// accumulated for the current step and returns the step's total energy
// share (kinetic plus this cell's half of the pair potentials).
func (c *cell) integrate(ctx *core.Ctx) float64 {
	dt := c.p.Dt
	if m := c.p.Model; m != nil {
		ctx.Charge(m.IntegrateCost(c.p.AtomsPerCell))
	}

	if !c.started {
		// Backward half-step to seed the leapfrog: v_{-1/2} = v0 − a·dt/2.
		for i := range c.vHalf {
			c.vHalf[i] = c.vel[i].Sub(c.fAcc[i].Scale(dt / 2))
		}
		c.started = true
	}

	// v_{n+1/2} = v_{n-1/2} + a_n·dt; v_n = (v_{n-1/2}+v_{n+1/2})/2.
	var ke float64
	for i := range c.pos {
		vNew := c.vHalf[i].Add(c.fAcc[i].Scale(dt))
		vAtN := c.vHalf[i].Add(vNew).Scale(0.5)
		ke += 0.5 * vAtN.Norm2()
		c.vHalf[i] = vNew
		c.vel[i] = vAtN
	}
	energy := ke + c.uAcc

	// Advance positions and reset accumulators.
	for i := range c.pos {
		c.pos[i] = c.pos[i].Add(c.vHalf[i].Scale(dt))
		c.fAcc[i] = Vec3{}
	}
	c.uAcc = 0
	return energy
}

// pairObj is one cell-pair chare.
type pairObj struct {
	p   *Params
	g   *Geometry
	ff  *ForceField
	idx int
	cp  CellPair
	q   []float64

	gate *core.StepGate
	posA []Vec3
	posB []Vec3
}

func newPair(p *Params, g *Geometry, ff *ForceField, idx int) *pairObj {
	cp := g.Pairs[idx]
	need := 2
	if cp.Self() {
		need = 1
	}
	return &pairObj{
		p: p, g: g, ff: ff, idx: idx, cp: cp,
		q:    p.Charges(),
		gate: core.NewStepGate(need),
	}
}

// Recv implements core.Chare.
func (o *pairObj) Recv(ctx *core.Ctx, entry core.EntryID, data any) {
	if entry != EntryCoords {
		panic(fmt.Sprintf("leanmd: pair got unknown entry %d", entry))
	}
	m := data.(coordMsg)
	if _, ok := o.gate.Deliver(m.Step, m); ok {
		o.store(m)
		o.tryCompute(ctx)
	}
}

func (o *pairObj) store(m coordMsg) {
	if m.From == o.cp.A {
		o.posA = m.Pos
	}
	if m.From == o.cp.B {
		o.posB = m.Pos
	}
}

func (o *pairObj) tryCompute(ctx *core.Ctx) {
	for o.gate.Ready() {
		o.compute(ctx)
		pend := o.gate.Advance()
		o.posA, o.posB = nil, nil
		for _, m := range pend {
			o.store(m.(coordMsg))
		}
	}
}

func (o *pairObj) compute(ctx *core.Ctx) {
	n := o.p.AtomsPerCell
	if o.cp.Self() {
		f := make([]Vec3, n)
		u := o.ff.SelfInteraction(o.posA, o.q, f)
		if m := o.p.Model; m != nil {
			ctx.Charge(m.PairCost(n, n, true))
		}
		ctx.Send(core.ElemRef{Array: ArrayCells, Index: o.cp.A}, EntryForces,
			forceMsg{Step: o.gate.Step(), F: f, U: u})
		return
	}
	fa := make([]Vec3, n)
	fb := make([]Vec3, n)
	u := o.ff.CellInteraction(o.posA, o.posB, o.q, o.q, fa, fb)
	if m := o.p.Model; m != nil {
		ctx.Charge(m.PairCost(n, n, false))
	}
	ctx.Send(core.ElemRef{Array: ArrayCells, Index: o.cp.A}, EntryForces,
		forceMsg{Step: o.gate.Step(), F: fa, U: u / 2})
	ctx.Send(core.ElemRef{Array: ArrayCells, Index: o.cp.B}, EntryForces,
		forceMsg{Step: o.gate.Step(), F: fb, U: u / 2})
}

// BuildProgram assembles LeanMD as a runnable core.Program. The program
// exits with a *Result. Cells and pairs are placed round-robin over PEs
// (cells block-mapped, pairs strided) so both clusters hold both kinds of
// objects, as in the paper's runs.
func BuildProgram(p *Params) (*core.Program, *Geometry, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	g, err := NewGeometry(p.NX, p.NY, p.NZ)
	if err != nil {
		return nil, nil, err
	}
	ff := p.Field()
	res := &Result{Steps: p.Steps, Warmup: p.Warmup, Cells: g.NumCells, Pairs: g.NumPairs()}
	var startAt time.Duration
	finalRound := int64(1)
	if p.Warmup > 0 {
		finalRound = 2
	}
	prog := &core.Program{
		Arrays: []core.ArraySpec{
			{
				ID: ArrayCells, N: g.NumCells,
				// No Restore: checkpointed cells rebuild through New + PUP.
				New: func(i int) core.Chare { return newCell(p, g, i) },
			},
			{
				ID: ArrayPairs, N: g.NumPairs(),
				New: func(i int) core.Chare { return newPair(p, g, ff, i) },
				// Pairs are placed with their lower cell's PE so that a
				// pair is local to at least one of its cells' clusters,
				// matching the paper's subset-A/subset-B structure.
				Map: func(i, numPE int) int {
					return core.BlockMap(g.Pairs[i].A, g.NumCells, numPE)
				},
			},
		},
		Start: func(ctx *core.Ctx) {
			startAt = ctx.Time()
			for i := 0; i < g.NumCells; i++ {
				ctx.Send(core.ElemRef{Array: ArrayCells, Index: i}, EntryKick, nil)
			}
		},
		OnReduction: func(ctx *core.Ctx, a core.ArrayID, seq int64, v any) {
			switch seq {
			case finalRound:
				res.EFinal = v.(float64)
				res.FinishAt = ctx.Time()
				res.Total = res.FinishAt - startAt
				if p.Warmup > 0 {
					res.PerStep = (res.FinishAt - res.WarmupAt) / time.Duration(p.Steps-p.Warmup)
				} else {
					res.PerStep = res.Total / time.Duration(p.Steps)
				}
				ctx.ExitWith(res)
			default:
				res.EWarm = v.(float64)
				res.WarmupAt = ctx.Time()
			}
		},
	}
	return prog, g, nil
}

func init() {
	core.RegisterPayload(coordMsg{})
	core.RegisterPayload(forceMsg{})
}
