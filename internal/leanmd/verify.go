package leanmd

// Reference implementations used by tests: direct O(N²) force evaluation
// over all atoms in the box, against which the cell/cell-pair
// decomposition must agree.

// System is a flattened view of all atoms for reference computations.
type System struct {
	Pos []Vec3
	Q   []float64
}

// BuildSystem instantiates every cell's initial atoms into one flat
// system, in cell order.
func BuildSystem(p *Params, g *Geometry) *System {
	s := &System{}
	q := p.Charges()
	for c := 0; c < g.NumCells; c++ {
		pos, _ := p.InitAtoms(c, g)
		s.Pos = append(s.Pos, pos...)
		s.Q = append(s.Q, q...)
	}
	return s
}

// DirectForces computes forces and total potential energy over all atom
// pairs with the minimum-image cutoff — no cell decomposition.
func DirectForces(ff *ForceField, s *System) (f []Vec3, u float64) {
	f = make([]Vec3, len(s.Pos))
	for i := 0; i < len(s.Pos); i++ {
		for j := i + 1; j < len(s.Pos); j++ {
			fv, du := ff.PairInteraction(s.Pos[i], s.Pos[j], s.Q[i], s.Q[j])
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
			u += du
		}
	}
	return f, u
}

// DecomposedForces computes forces via the cell-pair decomposition
// (sequentially, no runtime): the same arithmetic the pair objects
// perform.
func DecomposedForces(p *Params, g *Geometry, ff *ForceField, s *System) (f []Vec3, u float64) {
	n := p.AtomsPerCell
	f = make([]Vec3, len(s.Pos))
	q := p.Charges()
	for _, cp := range g.Pairs {
		if cp.Self() {
			u += ff.SelfInteraction(s.Pos[cp.A*n:(cp.A+1)*n], q, f[cp.A*n:(cp.A+1)*n])
			continue
		}
		u += ff.CellInteraction(
			s.Pos[cp.A*n:(cp.A+1)*n], s.Pos[cp.B*n:(cp.B+1)*n],
			q, q,
			f[cp.A*n:(cp.A+1)*n], f[cp.B*n:(cp.B+1)*n],
		)
	}
	return f, u
}
