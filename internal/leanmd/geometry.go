// Package leanmd implements the paper's second evaluation application: a
// classical molecular dynamics mini-app patterned on LeanMD. Atoms are
// partitioned into a periodic lattice of cells (6×6×6 = 216 in the
// paper's benchmark); every pair of neighboring cells — plus each cell's
// self-pair — is a separate cell-pair object that computes the
// electrostatic and van der Waals interactions between the two atom sets
// (2,808 neighbor pairs + 216 self-pairs = 3,024 pair objects). Each time
// step, every cell integrates the forces on its atoms and multicasts its
// coordinates to the 26 dependent cell-pairs (plus its self-pair); each
// pair computes forces and returns them to its two cells.
//
// The latency-tolerance mechanism is the paper's "subset A / subset B"
// argument: cell-pairs whose cells live in the local cluster can execute
// while pairs waiting on remote-cluster coordinates sit queued.
package leanmd

import (
	"fmt"
	"sort"
)

// cellID is a cell's linear index.
type cellID = int

// Geometry precomputes the cell lattice and the pair decomposition.
type Geometry struct {
	NX, NY, NZ int
	NumCells   int

	// Pairs lists the unordered cell pairs (A <= B); self-pairs have A == B.
	Pairs []CellPair
	// PairsOf[c] lists pair indices that involve cell c, sorted.
	PairsOf [][]int
}

// CellPair names the two cells of one pair object.
type CellPair struct {
	A, B cellID
}

// Self reports whether the pair is a cell's self-interaction object.
func (p CellPair) Self() bool { return p.A == p.B }

// NewGeometry builds the periodic 26-neighbor pair decomposition.
func NewGeometry(nx, ny, nz int) (*Geometry, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("leanmd: bad lattice %dx%dx%d", nx, ny, nz)
	}
	g := &Geometry{NX: nx, NY: ny, NZ: nz, NumCells: nx * ny * nz}

	seen := make(map[[2]int]bool)
	for c := 0; c < g.NumCells; c++ {
		x, y, z := g.coords(c)
		// Self-pair plus 26 periodic neighbors (deduplicated: small
		// lattices alias under wrap-around).
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					n := g.index(wrap(x+dx, nx), wrap(y+dy, ny), wrap(z+dz, nz))
					a, b := c, n
					if a > b {
						a, b = b, a
					}
					key := [2]int{a, b}
					if !seen[key] {
						seen[key] = true
						g.Pairs = append(g.Pairs, CellPair{A: a, B: b})
					}
				}
			}
		}
	}
	sort.Slice(g.Pairs, func(i, j int) bool {
		if g.Pairs[i].A != g.Pairs[j].A {
			return g.Pairs[i].A < g.Pairs[j].A
		}
		return g.Pairs[i].B < g.Pairs[j].B
	})
	g.PairsOf = make([][]int, g.NumCells)
	for pi, p := range g.Pairs {
		g.PairsOf[p.A] = append(g.PairsOf[p.A], pi)
		if !p.Self() {
			g.PairsOf[p.B] = append(g.PairsOf[p.B], pi)
		}
	}
	return g, nil
}

func wrap(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

func (g *Geometry) index(x, y, z int) int { return (z*g.NY+y)*g.NX + x }

func (g *Geometry) coords(c int) (x, y, z int) {
	x = c % g.NX
	y = (c / g.NX) % g.NY
	z = c / (g.NX * g.NY)
	return
}

// NumPairs reports the pair-object count (3,024 for the paper's 6×6×6).
func (g *Geometry) NumPairs() int { return len(g.Pairs) }
