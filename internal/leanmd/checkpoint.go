package leanmd

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"gridmdo/internal/core"
)

// Serialization of cells and cell-pairs, enabling load balancing
// (elements migrate between PEs) and checkpoint/restart for the MD
// application.

type cellState struct {
	Step    int
	Started bool
	Pos     []Vec3
	VHalf   []Vec3
	Vel     []Vec3
}

// Pack implements core.Migratable.
func (c *cell) Pack() ([]byte, error) {
	var buf bytes.Buffer
	st := cellState{Step: c.gate.Step(), Started: c.started, Pos: c.pos, VHalf: c.vHalf, Vel: c.vel}
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("leanmd: pack cell %d: %w", c.id, err)
	}
	return buf.Bytes(), nil
}

func restoreCell(p *Params, g *Geometry, id int, data []byte) (core.Chare, error) {
	var st cellState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("leanmd: restore cell %d: %w", id, err)
	}
	c := newCell(p, g, id)
	if len(st.Pos) != p.AtomsPerCell {
		return nil, fmt.Errorf("leanmd: restore cell %d: %d atoms, program wants %d", id, len(st.Pos), p.AtomsPerCell)
	}
	if p.Warmup > 0 && p.Warmup <= st.Step {
		return nil, fmt.Errorf("leanmd: restore cell %d: warmup %d not after restored step %d", id, p.Warmup, st.Step)
	}
	c.gate.JumpTo(st.Step)
	c.started = st.Started
	c.pos, c.vHalf, c.vel = st.Pos, st.VHalf, st.Vel
	c.done = st.Step >= p.Steps
	return c, nil
}

type pairState struct {
	Step int
}

// Pack implements core.Migratable. A pair's only durable state is its
// step counter; in-flight coordinates are never present at a sync or
// checkpoint quiescent point.
func (o *pairObj) Pack() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&pairState{Step: o.gate.Step()}); err != nil {
		return nil, fmt.Errorf("leanmd: pack pair %d: %w", o.idx, err)
	}
	if o.posA != nil || o.posB != nil || o.gate.PendingFuture() > 0 {
		return nil, fmt.Errorf("leanmd: pack pair %d with coordinates in flight", o.idx)
	}
	return buf.Bytes(), nil
}

func restorePair(p *Params, g *Geometry, ff *ForceField, idx int, data []byte) (core.Chare, error) {
	var st pairState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("leanmd: restore pair %d: %w", idx, err)
	}
	o := newPair(p, g, ff, idx)
	o.gate.JumpTo(st.Step)
	return o, nil
}

var (
	_ core.Migratable = (*cell)(nil)
	_ core.Migratable = (*pairObj)(nil)
)
