package leanmd

import "time"

// CostModel charges virtual execution time for LeanMD handlers on the
// modeled machine. The paper's benchmark runs "about 8 seconds" per step
// on one processor with 216 cells and 3,024 cell-pair objects; with the
// default 200 model-atoms per cell that calibrates to ~66 ns per atom-atom
// interaction on the 1.5 GHz Itanium 2 (see EXPERIMENTS.md).
//
// ModelAtomsPerCell decouples the modeled cost from the number of atoms
// actually simulated: the numerics run with Params.AtomsPerCell atoms
// (kept small so the simulations finish quickly on a development machine)
// while time is charged as if each cell held the paper-scale atom count.
// Set ModelAtomsPerCell to 0 to charge for the actual atom counts.
type CostModel struct {
	PerInteractionNS   float64 // cost of one atom-atom interaction
	IntegrateNSPerAtom float64 // per-atom integration cost
	ModelAtomsPerCell  int     // paper-scale atoms per cell; 0 = actual
	PerMsgOverheadNS   float64 // fixed handler overhead
}

// DefaultModel reproduces the paper's single-processor step time of ~8 s.
func DefaultModel() *CostModel {
	return &CostModel{
		PerInteractionNS:   66,
		IntegrateNSPerAtom: 150,
		ModelAtomsPerCell:  200,
		PerMsgOverheadNS:   8000,
	}
}

func (m *CostModel) atoms(actual int) int {
	if m.ModelAtomsPerCell > 0 {
		return m.ModelAtomsPerCell
	}
	return actual
}

// PairCost models one cell-pair force computation between cells of nA and
// nB actual atoms.
func (m *CostModel) PairCost(nA, nB int, self bool) time.Duration {
	a := m.atoms(nA)
	b := m.atoms(nB)
	var interactions float64
	if self {
		interactions = float64(a*(a-1)) / 2
	} else {
		interactions = float64(a) * float64(b)
	}
	ns := interactions*m.PerInteractionNS + m.PerMsgOverheadNS
	return time.Duration(ns) * time.Nanosecond
}

// IntegrateCost models one cell's per-step integration.
func (m *CostModel) IntegrateCost(n int) time.Duration {
	ns := float64(m.atoms(n))*m.IntegrateNSPerAtom + m.PerMsgOverheadNS
	return time.Duration(ns) * time.Nanosecond
}
