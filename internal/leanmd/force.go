package leanmd

import "math"

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Norm2 returns |a|².
func (a Vec3) Norm2() float64 { return a.X*a.X + a.Y*a.Y + a.Z*a.Z }

// ForceField holds the interaction parameters: a Lennard-Jones term (the
// van der Waals interactions of the paper) plus a cutoff-shifted Coulomb
// term (the electrostatic interactions), both truncated at Cutoff.
type ForceField struct {
	Epsilon float64 // LJ well depth
	Sigma   float64 // LJ zero-crossing distance
	Coulomb float64 // Coulomb constant (charge² prefactor absorbed in Charge)
	Cutoff  float64 // interaction cutoff radius
	Box     Vec3    // periodic box lengths (minimum-image convention)
}

// minImage maps a displacement into the minimum-image convention.
func (ff *ForceField) minImage(d Vec3) Vec3 {
	d.X -= ff.Box.X * math.Round(d.X/ff.Box.X)
	d.Y -= ff.Box.Y * math.Round(d.Y/ff.Box.Y)
	d.Z -= ff.Box.Z * math.Round(d.Z/ff.Box.Z)
	return d
}

// PairInteraction computes the force on atom i at ri (due to atom j at
// rj) and the pair's potential energy. Newton's third law gives atom j
// the negated force. Charges qi, qj.
func (ff *ForceField) PairInteraction(ri, rj Vec3, qi, qj float64) (f Vec3, u float64) {
	d := ff.minImage(ri.Sub(rj))
	r2 := d.Norm2()
	rc2 := ff.Cutoff * ff.Cutoff
	if r2 >= rc2 || r2 == 0 {
		return Vec3{}, 0
	}
	inv2 := 1 / r2
	// Lennard-Jones: U = 4ε[(σ/r)^12 − (σ/r)^6], shifted to zero at the
	// cutoff for energy continuity.
	s2 := ff.Sigma * ff.Sigma * inv2
	s6 := s2 * s2 * s2
	s12 := s6 * s6
	sc6 := math.Pow(ff.Sigma*ff.Sigma/rc2, 3)
	uLJ := 4*ff.Epsilon*(s12-s6) - 4*ff.Epsilon*(sc6*sc6-sc6)
	fLJ := 24 * ff.Epsilon * (2*s12 - s6) * inv2 // magnitude/r factor

	// Shifted-force Coulomb: U = kqq(1/r − 1/rc), F = kqq/r².
	r := math.Sqrt(r2)
	k := ff.Coulomb * qi * qj
	uC := k * (1/r - 1/ff.Cutoff)
	fC := k / (r2 * r) // magnitude/r factor

	scale := fLJ + fC
	return d.Scale(scale), uLJ + uC
}

// CellInteraction accumulates forces between two disjoint atom sets. fa
// and fb receive the per-atom forces (added in place); the return value
// is the pair potential energy.
func (ff *ForceField) CellInteraction(pa, pb []Vec3, qa, qb []float64, fa, fb []Vec3) float64 {
	var u float64
	for i := range pa {
		for j := range pb {
			f, du := ff.PairInteraction(pa[i], pb[j], qa[i], qb[j])
			fa[i] = fa[i].Add(f)
			fb[j] = fb[j].Sub(f)
			u += du
		}
	}
	return u
}

// SelfInteraction accumulates forces among atoms of one cell (each
// unordered pair once).
func (ff *ForceField) SelfInteraction(p []Vec3, q []float64, f []Vec3) float64 {
	var u float64
	for i := 0; i < len(p); i++ {
		for j := i + 1; j < len(p); j++ {
			fv, du := ff.PairInteraction(p[i], p[j], q[i], q[j])
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
			u += du
		}
	}
	return u
}
