package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderTimeline writes an ASCII utilization timeline, one row per PE:
// each column is one bucket of the horizon, shaded by the fraction of the
// bucket spent inside handlers (' ' idle, '░' <25%, '▒' <50%, '▓' <75%,
// '█' busy). Recorded idle spans are subtracted, so an AMPI rank blocked
// in Recv shows as idle even though its handler window is open. It is the
// textual analog of a Projections utilization view.
func (t *Tracer) RenderTimeline(w io.Writer, horizon time.Duration, buckets int) {
	if t == nil || horizon <= 0 || buckets <= 0 {
		fmt.Fprintln(w, "trace: no data")
		return
	}
	bucket := horizon / time.Duration(buckets)
	if bucket <= 0 {
		bucket = time.Nanosecond
	}
	fmt.Fprintf(w, "utilization timeline: %v per column, horizon %v\n", bucket, horizon)
	for pe := range t.shards {
		busy := t.busyPerBucket(pe, horizon, buckets)
		var b strings.Builder
		for _, f := range busy {
			b.WriteRune(shade(f))
		}
		fmt.Fprintf(w, "PE %3d |%s|\n", pe, b.String())
	}
}

// busyPerBucket computes the busy fraction (handler time minus recorded
// idle) of each bucket for one PE.
func (t *Tracer) busyPerBucket(pe int, horizon time.Duration, buckets int) []float64 {
	evs := t.shardEvents(pe)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	spans := subtractSpans(busySpans(evs, horizon), idleSpans(evs, horizon))
	return bucketFractions(spans, horizon, buckets)
}

// RenderTimelineEvents is RenderTimeline over an already-merged event
// stream (e.g. several gridnode snapshots), numPE rows.
func RenderTimelineEvents(w io.Writer, evs []Event, numPE int, horizon time.Duration, buckets int) {
	if horizon <= 0 || buckets <= 0 || numPE <= 0 {
		fmt.Fprintln(w, "trace: no data")
		return
	}
	bucket := horizon / time.Duration(buckets)
	if bucket <= 0 {
		bucket = time.Nanosecond
	}
	fmt.Fprintf(w, "utilization timeline: %v per column, horizon %v\n", bucket, horizon)
	for pe := 0; pe < numPE; pe++ {
		writeTimelineRow(w, pe, eventsForPE(evs, pe), horizon, buckets)
	}
}

// eventsForPE filters a time-sorted merged stream down to one PE.
func eventsForPE(evs []Event, pe int) []Event {
	var out []Event
	for _, ev := range evs {
		if ev.PE == pe {
			out = append(out, ev)
		}
	}
	return out
}

func writeTimelineRow(w io.Writer, pe int, evs []Event, horizon time.Duration, buckets int) {
	spans := subtractSpans(busySpans(evs, horizon), idleSpans(evs, horizon))
	busy := bucketFractions(spans, horizon, buckets)
	var b strings.Builder
	for _, f := range busy {
		b.WriteRune(shade(f))
	}
	fmt.Fprintf(w, "PE %3d |%s|\n", pe, b.String())
}

func shade(f float64) rune {
	switch {
	case f <= 0.01:
		return ' '
	case f < 0.25:
		return '░'
	case f < 0.50:
		return '▒'
	case f < 0.75:
		return '▓'
	default:
		return '█'
	}
}

// bucketFractions computes, per bucket of the horizon, the fraction of the
// bucket covered by the (normalized) spans.
func bucketFractions(spans []Span, horizon time.Duration, buckets int) []float64 {
	out := make([]float64, buckets)
	bw := horizon / time.Duration(buckets)
	if bw <= 0 {
		return out
	}
	for _, sp := range spans {
		if sp.End > horizon {
			sp.End = horizon
		}
		if sp.End <= sp.Start {
			continue
		}
		first := int(sp.Start / bw)
		last := int((sp.End - 1) / bw)
		for i := first; i <= last && i < buckets; i++ {
			lo := time.Duration(i) * bw
			hi := lo + bw
			a, b := sp.Start, sp.End
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if b > a {
				out[i] += float64(b-a) / float64(bw)
			}
		}
	}
	for i, f := range out {
		if f > 1 {
			out[i] = 1
		}
	}
	return out
}
