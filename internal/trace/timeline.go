package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderTimeline writes an ASCII utilization timeline, one row per PE:
// each column is one bucket of the horizon, shaded by the fraction of the
// bucket spent inside handlers (' ' idle, '░' <25%, '▒' <50%, '▓' <75%,
// '█' busy). It is the textual analog of a Projections utilization view.
func (t *Tracer) RenderTimeline(w io.Writer, horizon time.Duration, buckets int) {
	if t == nil || horizon <= 0 || buckets <= 0 {
		fmt.Fprintln(w, "trace: no data")
		return
	}
	bucket := horizon / time.Duration(buckets)
	if bucket <= 0 {
		bucket = time.Nanosecond
	}
	fmt.Fprintf(w, "utilization timeline: %v per column, horizon %v\n", bucket, horizon)
	for pe := range t.shards {
		busy := t.busyPerBucket(pe, horizon, buckets)
		var b strings.Builder
		for _, f := range busy {
			b.WriteRune(shade(f))
		}
		fmt.Fprintf(w, "PE %3d |%s|\n", pe, b.String())
	}
}

func shade(f float64) rune {
	switch {
	case f <= 0.01:
		return ' '
	case f < 0.25:
		return '░'
	case f < 0.50:
		return '▒'
	case f < 0.75:
		return '▓'
	default:
		return '█'
	}
}

// busyPerBucket computes the busy fraction of each bucket for one PE.
func (t *Tracer) busyPerBucket(pe int, horizon time.Duration, buckets int) []float64 {
	s := &t.shards[pe]
	s.mu.Lock()
	evs := append([]Event(nil), s.events...)
	s.mu.Unlock()

	type span struct{ a, b time.Duration }
	var spans []span
	var openAt time.Duration = -1
	for _, ev := range evs {
		switch ev.Kind {
		case EvBegin:
			if openAt < 0 {
				openAt = ev.At
			}
		case EvEnd:
			if openAt >= 0 {
				spans = append(spans, span{openAt, ev.At})
				openAt = -1
			}
		}
	}
	if openAt >= 0 {
		spans = append(spans, span{openAt, horizon})
	}

	out := make([]float64, buckets)
	bw := horizon / time.Duration(buckets)
	if bw <= 0 {
		return out
	}
	for _, sp := range spans {
		if sp.b > horizon {
			sp.b = horizon
		}
		if sp.b <= sp.a {
			continue
		}
		first := int(sp.a / bw)
		last := int((sp.b - 1) / bw)
		for i := first; i <= last && i < buckets; i++ {
			lo := time.Duration(i) * bw
			hi := lo + bw
			a, b := sp.a, sp.b
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if b > a {
				out[i] += float64(b-a) / float64(bw)
			}
		}
	}
	for i, f := range out {
		if f > 1 {
			out[i] = 1
		}
	}
	return out
}
