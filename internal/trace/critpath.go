package trace

import (
	"fmt"
	"io"
	"time"
)

// Critical-path analysis over the send→enqueue→begin→end message DAG, in
// the spirit of "Task Graph Transformations for Latency Tolerance": walk
// backwards from the last handler completion through each message's
// parent (the message whose handler sent it), classifying every hop's
// contribution as flight (in the air / on the wire), queue (enqueued,
// waiting for the PE), or compute (inside the handler).
//
// A nearest-neighbour exchange keeps the WAN flight on the dependency
// chain at every virtualization degree — the ghost *must* cross the link
// before the next step. What virtualization changes is whether that
// flight time is *exposed* (the destination PE sat idle under it) or
// *masked* (the PE was computing other objects while it flew). Each
// hop's flight is therefore split against the destination PE's busy
// spans: a run bounded by exposed WAN latency shows a comm-wait-dominated
// path; once virtualization masks the latency the path shifts to
// compute.

// Hop is one message's contribution to the critical path.
type Hop struct {
	MsgID   uint64
	MsgKind byte
	PE      int           // where the handler ran
	Flight  time.Duration // send → enqueue
	Masked  time.Duration // flight time the destination PE spent computing
	Queue   time.Duration // enqueue → begin
	Compute time.Duration // begin → end
}

// Exposed is the flight time the destination PE sat idle under — the
// comm-wait this hop contributes to the path.
func (h Hop) Exposed() time.Duration { return h.Flight - h.Masked }

// CritPath is the chain of hops bounding the traced run, root first.
type CritPath struct {
	Hops    []Hop
	Flight  time.Duration
	Masked  time.Duration // portion of Flight hidden behind destination compute
	Exposed time.Duration // portion of Flight the destination idled under
	Queue   time.Duration
	Compute time.Duration
	Total   time.Duration
	Clipped bool // walk stopped at a missing parent (ring wrap or foreign node)
}

// FlightFraction is the share of the path spent on the wire, masked or
// not.
func (c *CritPath) FlightFraction() float64 {
	if c.Total <= 0 {
		return 0
	}
	return float64(c.Flight) / float64(c.Total)
}

// ExposedFraction is the share of the path that was genuine comm-wait:
// wire latency with the destination PE idle. This is the number that
// falls as V/P grows, even though the flight itself never leaves the
// dependency chain.
func (c *CritPath) ExposedFraction() float64 {
	if c.Total <= 0 {
		return 0
	}
	return float64(c.Exposed) / float64(c.Total)
}

// Dominant names the largest component: "compute", "comm-wait" (exposed
// flight), or "queue". Masked flight counts toward neither — the PE was
// doing useful work under it, which is the paper's point.
func (c *CritPath) Dominant() string {
	switch {
	case c.Compute >= c.Exposed && c.Compute >= c.Queue:
		return "compute"
	case c.Exposed >= c.Queue:
		return "comm-wait"
	}
	return "queue"
}

// msgTimes is the per-message lifecycle assembled from the event stream.
type msgTimes struct {
	send, enq, begin, end time.Duration
	hasSend, hasEnq       bool
	hasBegin, hasEnd      bool
	parent                uint64
	pe                    int
	kind                  byte
}

func indexMessages(evs []Event) map[uint64]*msgTimes {
	idx := make(map[uint64]*msgTimes)
	get := func(id uint64) *msgTimes {
		m, ok := idx[id]
		if !ok {
			m = &msgTimes{}
			idx[id] = m
		}
		return m
	}
	for _, ev := range evs {
		if ev.MsgID == 0 {
			continue
		}
		m := get(ev.MsgID)
		switch ev.Kind {
		case EvSend:
			if !m.hasSend {
				m.send, m.hasSend = ev.At, true
				m.parent = ev.Parent
				m.kind = ev.MsgKind
			}
		case EvEnqueue:
			if !m.hasEnq {
				m.enq, m.hasEnq = ev.At, true
			}
		case EvBegin:
			if !m.hasBegin {
				m.begin, m.hasBegin = ev.At, true
				m.pe = ev.PE
				if m.kind == 0 {
					m.kind = ev.MsgKind
				}
			}
		case EvEnd:
			if !m.hasEnd || ev.At > m.end {
				m.end, m.hasEnd = ev.At, true
			}
		}
	}
	return idx
}

// CriticalPath walks backwards from the last handler completion in the
// merged stream. The walk follows each message's Parent link; it stops at
// a message with no recorded parent (the root, typically the start
// message) or whose parent's events were lost (ring wrap-around), setting
// Clipped in the latter case.
func CriticalPath(evs []Event) *CritPath {
	idx := indexMessages(evs)
	// Terminal: the executed message with the latest end time.
	var termID uint64
	var termEnd time.Duration = -1
	for id, m := range idx {
		if m.hasEnd && m.end > termEnd {
			termEnd, termID = m.end, id
		}
	}
	cp := &CritPath{}
	if termID == 0 {
		return cp
	}
	// Destination busy spans, built lazily per PE, split each hop's flight
	// into masked (PE computing underneath) and exposed (PE idle).
	var maxAt time.Duration
	for _, ev := range evs {
		if end := ev.At + time.Duration(ev.Arg1); ev.Kind == EvIdle && end > maxAt {
			maxAt = end
		} else if ev.At > maxAt {
			maxAt = ev.At
		}
	}
	busyFor := make(map[int][]Span)
	peBusy := func(pe int) []Span {
		if b, ok := busyFor[pe]; ok {
			return b
		}
		pevs := eventsForPE(evs, pe)
		b := subtractSpans(busySpans(pevs, maxAt), idleSpans(pevs, maxAt))
		busyFor[pe] = b
		return b
	}
	seen := make(map[uint64]bool)
	var rev []Hop
	id := termID
	for id != 0 && !seen[id] && len(rev) < 1<<16 {
		seen[id] = true
		m, ok := idx[id]
		if !ok {
			cp.Clipped = true
			break
		}
		h := Hop{MsgID: id, MsgKind: m.kind, PE: m.pe}
		if m.hasBegin && m.hasEnd && m.end > m.begin {
			h.Compute = m.end - m.begin
		}
		if m.hasEnq && m.hasBegin && m.begin > m.enq {
			h.Queue = m.begin - m.enq
		}
		if m.hasSend && m.hasEnq && m.enq > m.send {
			h.Flight = m.enq - m.send
			if m.hasBegin {
				h.Masked = totalSpans(intersectSpans(
					[]Span{{m.send, m.enq}}, peBusy(m.pe)))
			}
		}
		rev = append(rev, h)
		if m.parent != 0 && idx[m.parent] == nil {
			cp.Clipped = true
		}
		id = m.parent
	}
	// Reverse into causal order, root first.
	for i := len(rev) - 1; i >= 0; i-- {
		h := rev[i]
		cp.Hops = append(cp.Hops, h)
		cp.Flight += h.Flight
		cp.Masked += h.Masked
		cp.Queue += h.Queue
		cp.Compute += h.Compute
	}
	cp.Exposed = cp.Flight - cp.Masked
	cp.Total = cp.Flight + cp.Queue + cp.Compute
	return cp
}

// Report writes a human-readable critical-path summary: totals, the
// dominant component, and the first/last hops of the chain.
func (c *CritPath) Report(w io.Writer, msgKindName func(byte) string) {
	if len(c.Hops) == 0 {
		fmt.Fprintln(w, "critical path: no complete handler chain in trace")
		return
	}
	if msgKindName == nil {
		msgKindName = func(k byte) string { return fmt.Sprintf("kind%d", k) }
	}
	fmt.Fprintf(w, "critical path: %d hops, %v total (compute %v / flight %v = %v masked + %v comm-wait / queue %v), dominated by %s\n",
		len(c.Hops), c.Total.Round(time.Microsecond), c.Compute.Round(time.Microsecond),
		c.Flight.Round(time.Microsecond), c.Masked.Round(time.Microsecond),
		c.Exposed.Round(time.Microsecond), c.Queue.Round(time.Microsecond), c.Dominant())
	if c.Clipped {
		fmt.Fprintln(w, "  (walk clipped: oldest history lost to ring wrap or a foreign-node snapshot is missing)")
	}
	show := c.Hops
	const headTail = 4
	if len(show) > 2*headTail {
		for _, h := range show[:headTail] {
			reportHop(w, h, msgKindName)
		}
		fmt.Fprintf(w, "  ... %d more hops ...\n", len(show)-2*headTail)
		show = show[len(show)-headTail:]
	}
	for _, h := range show {
		reportHop(w, h, msgKindName)
	}
}

func reportHop(w io.Writer, h Hop, msgKindName func(byte) string) {
	fmt.Fprintf(w, "  msg %#x %-7s PE %-3d flight %-12v (masked %-12v) queue %-12v compute %v\n",
		h.MsgID, msgKindName(h.MsgKind), h.PE,
		h.Flight.Round(time.Microsecond), h.Masked.Round(time.Microsecond),
		h.Queue.Round(time.Microsecond), h.Compute.Round(time.Microsecond))
}
