package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// The overlap profiler is the direct measurement of the paper's central
// claim: message-driven scheduling overlaps WAN latency with computation.
// For every message the causal stream records a flight span (send → enqueue
// at the destination PE). Flight time that coincides with the destination
// PE being busy in other handlers is *masked* latency — the latency the
// scheduler hid. Flight time while the destination PE had nothing to run
// is *exposed* latency: genuine comm-wait. As the virtualization degree
// V/P grows, each PE has more objects to run while a message is in the
// air, so the masked fraction should grow — that is Figure 3's flat curve,
// measured directly instead of inferred.

// PEOverlap is one PE's time breakdown over a window.
type PEOverlap struct {
	PE       int
	Busy     time.Duration // inside handlers (minus recorded idle)
	CommWait time.Duration // flights in the air while this PE was not busy (= exposed)
	PureIdle time.Duration // idle with nothing in flight toward this PE
	Masked   time.Duration // flight time overlapped by useful computation
	Exposed  time.Duration // flight time not overlapped (equals CommWait)
	Flights  int           // messages whose flight terminated at this PE
}

// MaskedFraction is the fraction of in-flight latency toward this PE that
// was hidden behind computation.
func (p PEOverlap) MaskedFraction() float64 {
	if t := p.Masked + p.Exposed; t > 0 {
		return float64(p.Masked) / float64(t)
	}
	return 0
}

// Overlap aggregates the per-PE breakdowns over one window.
type Overlap struct {
	From, To time.Duration
	PEs      []PEOverlap
}

// Totals sums the per-PE breakdowns.
func (o *Overlap) Totals() PEOverlap {
	t := PEOverlap{PE: -1}
	for _, p := range o.PEs {
		t.Busy += p.Busy
		t.CommWait += p.CommWait
		t.PureIdle += p.PureIdle
		t.Masked += p.Masked
		t.Exposed += p.Exposed
		t.Flights += p.Flights
	}
	return t
}

// MaskedFraction is the run-wide masked fraction of in-flight latency.
func (o *Overlap) MaskedFraction() float64 { return o.Totals().MaskedFraction() }

// flight is one message's in-air span, ending at the destination PE.
type flight struct {
	dst  int
	span Span
}

// collectFlights pairs EvSend with the matching EvEnqueue by MsgID. A
// bundle fan-out enqueues several messages carrying the same ID; each
// enqueue closes its own flight. Flights whose enqueue precedes their send
// (cross-process clock skew) are clamped to zero length and dropped.
func collectFlights(evs []Event) []flight {
	sendAt := make(map[uint64]time.Duration)
	for _, ev := range evs {
		if ev.Kind == EvSend && ev.MsgID != 0 {
			if _, ok := sendAt[ev.MsgID]; !ok {
				sendAt[ev.MsgID] = ev.At
			}
		}
	}
	var out []flight
	for _, ev := range evs {
		if ev.Kind != EvEnqueue || ev.MsgID == 0 {
			continue
		}
		s, ok := sendAt[ev.MsgID]
		if !ok || ev.At <= s {
			continue
		}
		out = append(out, flight{dst: ev.PE, span: Span{s, ev.At}})
	}
	return out
}

// ComputeOverlap builds the overlap profile of a merged, time-sorted event
// stream over [0, horizon), one PEOverlap per PE in [0, numPE).
func ComputeOverlap(evs []Event, numPE int, horizon time.Duration) *Overlap {
	return computeOverlapWindow(evs, collectFlights(evs), numPE, 0, horizon)
}

func computeOverlapWindow(evs []Event, flights []flight, numPE int, from, to time.Duration) *Overlap {
	o := &Overlap{From: from, To: to}
	perDst := make([][]Span, numPE)
	counts := make([]int, numPE)
	for _, f := range flights {
		if f.dst < 0 || f.dst >= numPE {
			continue
		}
		c := clipSpans([]Span{f.span}, from, to)
		if len(c) == 0 {
			continue
		}
		perDst[f.dst] = append(perDst[f.dst], c...)
		counts[f.dst]++
	}
	window := to - from
	for pe := 0; pe < numPE; pe++ {
		pevs := eventsForPE(evs, pe)
		busy := clipSpans(subtractSpans(busySpans(pevs, to), idleSpans(pevs, to)), from, to)
		// Union of flights toward this PE, so overlapping flights are not
		// double-counted in the masked/exposed split.
		flightU := normalizeSpans(perDst[pe])
		masked := totalSpans(intersectSpans(flightU, busy))
		inAir := totalSpans(flightU)
		busyT := totalSpans(busy)
		exposed := inAir - masked
		pure := window - busyT - exposed
		if pure < 0 {
			pure = 0
		}
		o.PEs = append(o.PEs, PEOverlap{
			PE:       pe,
			Busy:     busyT,
			CommWait: exposed,
			PureIdle: pure,
			Masked:   masked,
			Exposed:  exposed,
			Flights:  counts[pe],
		})
	}
	return o
}

// StepOverlap is the overlap profile of one application step, delimited by
// "step" note events (Ctx.Mark("step", n, 0) from the application).
type StepOverlap struct {
	Step int64
	Overlap
}

// StepOverlaps segments [0, horizon) at the "step" note marks in the
// stream and profiles each segment. The segment before the first mark is
// labelled with that mark's step number minus one fencepost — i.e. marks
// are treated as step *starts*. With no marks, one segment covering the
// whole horizon is returned with Step −1.
func StepOverlaps(evs []Event, numPE int, horizon time.Duration) []StepOverlap {
	type mark struct {
		at   time.Duration
		step int64
	}
	var marks []mark
	for _, ev := range evs {
		if ev.Kind == EvNote && ev.Note == "step" {
			marks = append(marks, mark{ev.At, ev.Arg1})
		}
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i].at < marks[j].at })
	flights := collectFlights(evs)
	if len(marks) == 0 {
		o := computeOverlapWindow(evs, flights, numPE, 0, horizon)
		return []StepOverlap{{Step: -1, Overlap: *o}}
	}
	var out []StepOverlap
	for i, m := range marks {
		from := m.at
		to := horizon
		if i+1 < len(marks) {
			to = marks[i+1].at
		}
		if to <= from {
			continue
		}
		o := computeOverlapWindow(evs, flights, numPE, from, to)
		out = append(out, StepOverlap{Step: m.step, Overlap: *o})
	}
	return out
}

// Report writes a human-readable overlap profile: the run-wide masked
// fraction, then the per-PE compute / comm-wait / masked breakdown.
func (o *Overlap) Report(w io.Writer) {
	tot := o.Totals()
	window := o.To - o.From
	fmt.Fprintf(w, "overlap profile [%v, %v): masked latency %.1f%% of %v in flight (%d flights)\n",
		o.From.Round(time.Microsecond), o.To.Round(time.Microsecond),
		100*tot.MaskedFraction(), (tot.Masked + tot.Exposed).Round(time.Microsecond), tot.Flights)
	fmt.Fprintf(w, "  %-5s %12s %12s %12s %12s %8s\n", "PE", "compute", "comm-wait", "masked", "pure-idle", "masked%")
	for _, p := range o.PEs {
		fmt.Fprintf(w, "  %-5d %12v %12v %12v %12v %7.1f%%\n",
			p.PE, p.Busy.Round(time.Microsecond), p.CommWait.Round(time.Microsecond),
			p.Masked.Round(time.Microsecond), p.PureIdle.Round(time.Microsecond),
			100*p.MaskedFraction())
	}
	if window > 0 {
		fmt.Fprintf(w, "  total compute %.1f%%, comm-wait %.1f%% of window\n",
			100*float64(tot.Busy)/float64(window)/float64(maxInt(len(o.PEs), 1)),
			100*float64(tot.CommWait)/float64(window)/float64(maxInt(len(o.PEs), 1)))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
