package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

const msTest = time.Millisecond

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := NewWithCapacity(1, 4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{PE: 0, Kind: EvNote, At: time.Duration(i), Arg1: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.Arg1 != want {
			t.Fatalf("event %d: Arg1 = %d, want %d (oldest retained must be 6)", i, ev.Arg1, want)
		}
	}
}

func TestCapacityRoundsToPowerOfTwo(t *testing.T) {
	tr := NewWithCapacity(1, 5)
	if got := len(tr.shards[0].buf); got != 8 {
		t.Fatalf("capacity = %d, want 8", got)
	}
	tr = NewWithCapacity(1, 8)
	if got := len(tr.shards[0].buf); got != 8 {
		t.Fatalf("capacity = %d, want 8", got)
	}
}

// Regression: idle gaps inside an open Begin window (AMPI rank blocked in
// recv) must not count as busy.
func TestUtilizationSubtractsIdle(t *testing.T) {
	tr := New(1)
	tr.Record(Event{PE: 0, Kind: EvBegin, At: 0})
	tr.Record(Event{PE: 0, Kind: EvIdle, At: 40 * msTest, Arg1: int64(20 * msTest)})
	tr.Record(Event{PE: 0, Kind: EvEnd, At: 100 * msTest})
	u := tr.Utilization(100 * msTest)
	if math.Abs(u[0]-0.80) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.80 (idle span inside Begin window not subtracted)", u[0])
	}
}

func TestSpanAlgebra(t *testing.T) {
	a := []Span{{0, 10}, {20, 30}}
	b := []Span{{5, 25}}
	if got := subtractSpans(a, b); len(got) != 2 || got[0] != (Span{0, 5}) || got[1] != (Span{25, 30}) {
		t.Fatalf("subtract = %v", got)
	}
	if got := intersectSpans(a, b); len(got) != 2 || got[0] != (Span{5, 10}) || got[1] != (Span{20, 25}) {
		t.Fatalf("intersect = %v", got)
	}
	if got := normalizeSpans([]Span{{5, 7}, {0, 6}, {9, 9}}); len(got) != 1 || got[0] != (Span{0, 7}) {
		t.Fatalf("normalize = %v", got)
	}
	if got := totalSpans(a); got != 20 {
		t.Fatalf("total = %v", got)
	}
}

func TestOverlapMaskedFraction(t *testing.T) {
	evs := []Event{
		{PE: 0, Kind: EvSend, At: 0, MsgID: 1},
		{PE: 1, Kind: EvBegin, At: 0, MsgID: 9},
		{PE: 1, Kind: EvEnd, At: 6 * msTest, MsgID: 9},
		{PE: 1, Kind: EvEnqueue, At: 10 * msTest, MsgID: 1},
	}
	o := ComputeOverlap(evs, 2, 10*msTest)
	p := o.PEs[1]
	if p.Masked != 6*msTest || p.Exposed != 4*msTest {
		t.Fatalf("masked/exposed = %v/%v, want 6ms/4ms", p.Masked, p.Exposed)
	}
	if math.Abs(p.MaskedFraction()-0.6) > 1e-9 {
		t.Fatalf("masked fraction = %v, want 0.6", p.MaskedFraction())
	}
	if p.CommWait != 4*msTest || p.PureIdle != 0 {
		t.Fatalf("comm-wait/pure-idle = %v/%v, want 4ms/0", p.CommWait, p.PureIdle)
	}
	if p.Flights != 1 {
		t.Fatalf("flights = %d, want 1", p.Flights)
	}
	var buf bytes.Buffer
	o.Report(&buf)
	if !strings.Contains(buf.String(), "masked latency 60.0%") {
		t.Fatalf("report missing masked fraction:\n%s", buf.String())
	}
}

func TestOverlappingFlightsNotDoubleCounted(t *testing.T) {
	// Two flights toward PE 1 covering the same [0,10ms) air time; PE 1
	// busy throughout. Masked must be 10ms (union), not 20ms.
	evs := []Event{
		{PE: 0, Kind: EvSend, At: 0, MsgID: 1},
		{PE: 0, Kind: EvSend, At: 0, MsgID: 2},
		{PE: 1, Kind: EvBegin, At: 0, MsgID: 9},
		{PE: 1, Kind: EvEnqueue, At: 10 * msTest, MsgID: 1},
		{PE: 1, Kind: EvEnqueue, At: 10 * msTest, MsgID: 2},
		{PE: 1, Kind: EvEnd, At: 10 * msTest, MsgID: 9},
	}
	o := ComputeOverlap(evs, 2, 10*msTest)
	if p := o.PEs[1]; p.Masked != 10*msTest || p.Exposed != 0 {
		t.Fatalf("masked/exposed = %v/%v, want 10ms/0", p.Masked, p.Exposed)
	}
}

func TestStepOverlaps(t *testing.T) {
	evs := []Event{
		{PE: 0, Kind: EvNote, Note: "step", Arg1: 1, At: 0},
		{PE: 0, Kind: EvSend, At: 1 * msTest, MsgID: 1},
		{PE: 0, Kind: EvEnqueue, At: 3 * msTest, MsgID: 1},
		{PE: 0, Kind: EvNote, Note: "step", Arg1: 2, At: 10 * msTest},
		{PE: 0, Kind: EvSend, At: 11 * msTest, MsgID: 2},
		{PE: 0, Kind: EvEnqueue, At: 15 * msTest, MsgID: 2},
	}
	steps := StepOverlaps(evs, 1, 20*msTest)
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps))
	}
	if steps[0].Step != 1 || steps[1].Step != 2 {
		t.Fatalf("step labels = %d,%d", steps[0].Step, steps[1].Step)
	}
	if got := steps[0].Totals().Exposed; got != 2*msTest {
		t.Fatalf("step 1 exposed = %v, want 2ms", got)
	}
	if got := steps[1].Totals().Exposed; got != 4*msTest {
		t.Fatalf("step 2 exposed = %v, want 4ms", got)
	}
}

func TestCriticalPath(t *testing.T) {
	// msg 1 runs on PE 0 [0,5ms); its handler sends msg 2 at 1ms, which
	// flies 3ms, queues 2ms, and computes 3ms on PE 1.
	evs := []Event{
		{PE: 0, Kind: EvBegin, At: 0, MsgID: 1, MsgKind: 1},
		{PE: 0, Kind: EvSend, At: 1 * msTest, MsgID: 2, Parent: 1},
		{PE: 0, Kind: EvEnd, At: 5 * msTest, MsgID: 1},
		{PE: 1, Kind: EvEnqueue, At: 4 * msTest, MsgID: 2},
		{PE: 1, Kind: EvBegin, At: 6 * msTest, MsgID: 2},
		{PE: 1, Kind: EvEnd, At: 9 * msTest, MsgID: 2},
	}
	cp := CriticalPath(evs)
	if len(cp.Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(cp.Hops))
	}
	if cp.Hops[0].MsgID != 1 || cp.Hops[1].MsgID != 2 {
		t.Fatalf("hop order = %#x,%#x, want root first", cp.Hops[0].MsgID, cp.Hops[1].MsgID)
	}
	if cp.Compute != 8*msTest || cp.Flight != 3*msTest || cp.Queue != 2*msTest {
		t.Fatalf("compute/flight/queue = %v/%v/%v", cp.Compute, cp.Flight, cp.Queue)
	}
	if cp.Dominant() != "compute" {
		t.Fatalf("dominant = %s, want compute", cp.Dominant())
	}
	if math.Abs(cp.FlightFraction()-float64(3)/13) > 1e-9 {
		t.Fatalf("flight fraction = %v", cp.FlightFraction())
	}
	if cp.Clipped {
		t.Fatal("path clipped with full history present")
	}
	var buf bytes.Buffer
	cp.Report(&buf, nil)
	if !strings.Contains(buf.String(), "dominated by compute") {
		t.Fatalf("report:\n%s", buf.String())
	}
}

func TestCriticalPathMaskedFlight(t *testing.T) {
	// msg 2 flies 6ms toward PE 1; for 4ms of that flight PE 1 is busy
	// running msg 3 (another object's handler), so 4ms of the wire latency
	// is masked and only 2ms is exposed comm-wait.
	evs := []Event{
		{PE: 0, Kind: EvBegin, At: 0, MsgID: 1},
		{PE: 0, Kind: EvSend, At: 1 * msTest, MsgID: 2, Parent: 1},
		{PE: 0, Kind: EvEnd, At: 2 * msTest, MsgID: 1},
		{PE: 1, Kind: EvBegin, At: 2 * msTest, MsgID: 3},
		{PE: 1, Kind: EvEnd, At: 6 * msTest, MsgID: 3},
		{PE: 1, Kind: EvEnqueue, At: 7 * msTest, MsgID: 2},
		{PE: 1, Kind: EvBegin, At: 7 * msTest, MsgID: 2},
		{PE: 1, Kind: EvEnd, At: 8 * msTest, MsgID: 2},
	}
	cp := CriticalPath(evs)
	if cp.Flight != 6*msTest {
		t.Fatalf("flight = %v, want 6ms", cp.Flight)
	}
	if cp.Masked != 4*msTest || cp.Exposed != 2*msTest {
		t.Fatalf("masked/exposed = %v/%v, want 4ms/2ms", cp.Masked, cp.Exposed)
	}
	// Path compute = msg1's 2ms + msg2's 1ms = 3ms > 2ms exposed, so the
	// masked split flips dominance to compute even though raw flight (6ms)
	// is the largest single component.
	if got := cp.Dominant(); got != "compute" {
		t.Fatalf("dominant = %s", got)
	}
	if f := cp.ExposedFraction(); math.Abs(f-float64(2)/9) > 1e-9 {
		t.Fatalf("exposed fraction = %v, want 2/9 (2ms of 9ms path)", f)
	}
}

func TestCriticalPathClippedOnMissingParent(t *testing.T) {
	evs := []Event{
		{PE: 0, Kind: EvSend, At: 0, MsgID: 2, Parent: 99}, // parent 99 never traced
		{PE: 0, Kind: EvEnqueue, At: 1 * msTest, MsgID: 2},
		{PE: 0, Kind: EvBegin, At: 1 * msTest, MsgID: 2},
		{PE: 0, Kind: EvEnd, At: 2 * msTest, MsgID: 2},
	}
	cp := CriticalPath(evs)
	if !cp.Clipped {
		t.Fatal("expected clipped path")
	}
}

func TestSnapshotRoundTripAndMerge(t *testing.T) {
	tr := New(2)
	tr.Record(Event{PE: 0, Kind: EvSend, At: 1 * msTest, MsgID: 7, Parent: 3, MsgKind: 2})
	tr.Record(Event{PE: 1, Kind: EvEnqueue, At: 2 * msTest, MsgID: 7})
	var buf bytes.Buffer
	if err := tr.Snapshot(0, 0, 2, 5*msTest).Write(&buf); err != nil {
		t.Fatal(err)
	}
	s1, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := &Snapshot{Node: 1, PELo: 2, PEHi: 4, Horizon: int64(9 * msTest),
		Events: []SnapEvent{{PE: 3, Kind: EvBegin, At: int64(3 * msTest), MsgID: 7}}}
	evs, numPE, horizon := Merge(s1, s2)
	if numPE != 4 || horizon != 9*msTest {
		t.Fatalf("numPE=%d horizon=%v", numPE, horizon)
	}
	if len(evs) != 3 || evs[0].MsgID != 7 || evs[0].Parent != 3 || evs[0].MsgKind != 2 {
		t.Fatalf("merged events = %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("merged events not time-sorted")
		}
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	evs := []Event{
		{PE: 0, Kind: EvBegin, At: 0, MsgID: 1},
		{PE: 0, Kind: EvSend, At: 1 * msTest, MsgID: 2, Parent: 1},
		{PE: 0, Kind: EvEnd, At: 2 * msTest, MsgID: 1},
		{PE: 1, Kind: EvEnqueue, At: 3 * msTest, MsgID: 2},
		{PE: 1, Kind: EvIdle, At: 4 * msTest, Arg1: int64(msTest)},
		{PE: 1, Kind: EvNote, At: 5 * msTest, Note: `st"ep`},
		{PE: 1, Kind: EvBlock, At: 6 * msTest, Arg1: 3},
		{PE: 1, Kind: EvWake, At: 7 * msTest, Arg1: 3, Arg2: 100, MsgID: 2},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs, func(pe int) int { return pe / 1 }); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, e := range parsed {
		phases[e["ph"].(string)]++
	}
	if phases["X"] < 2 || phases["s"] != 1 || phases["f"] != 1 || phases["i"] < 3 {
		t.Fatalf("phase counts = %v", phases)
	}
}

func TestRenderTimelineEvents(t *testing.T) {
	evs := []Event{
		{PE: 0, Kind: EvBegin, At: 0},
		{PE: 0, Kind: EvEnd, At: 5 * msTest},
	}
	var buf bytes.Buffer
	RenderTimelineEvents(&buf, evs, 2, 10*msTest, 10)
	out := buf.String()
	if !strings.Contains(out, "PE   0 |█████     |") {
		t.Fatalf("timeline:\n%s", out)
	}
}

func TestMergeRebasesEpochs(t *testing.T) {
	base := int64(1_000_000_000_000)
	s0 := &Snapshot{
		Node: 0, PELo: 0, PEHi: 1, Horizon: int64(10 * msTest), EpochUnixNs: base,
		Events: []SnapEvent{{PE: 0, Kind: EvSend, At: int64(2 * msTest), MsgID: 1}},
	}
	s1 := &Snapshot{
		Node: 1, PELo: 1, PEHi: 2, Horizon: int64(10 * msTest), EpochUnixNs: base + int64(5*msTest),
		Events: []SnapEvent{{PE: 1, Kind: EvEnqueue, At: int64(0), MsgID: 1}},
	}
	evs, numPE, horizon := Merge(s0, s1)
	if numPE != 2 {
		t.Errorf("numPE = %d", numPE)
	}
	// Node 1 started 5ms after node 0, so its event lands at 5ms absolute.
	var enqAt time.Duration = -1
	for _, ev := range evs {
		if ev.Kind == EvEnqueue {
			enqAt = ev.At
		}
	}
	if enqAt != 5*msTest {
		t.Errorf("re-based enqueue at %v, want 5ms", enqAt)
	}
	if horizon != 15*msTest {
		t.Errorf("horizon %v, want 15ms", horizon)
	}

	// Without epochs, times pass through untouched.
	s1.EpochUnixNs = 0
	s0.EpochUnixNs = 0
	evs, _, horizon = Merge(s0, s1)
	for _, ev := range evs {
		if ev.Kind == EvEnqueue && ev.At != 0 {
			t.Errorf("epoch-less merge shifted event to %v", ev.At)
		}
	}
	if horizon != 10*msTest {
		t.Errorf("epoch-less horizon %v", horizon)
	}
}
