package trace

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{PE: 0, Kind: EvBegin})
	if tr.Events() != nil {
		t.Error("nil tracer returned events")
	}
	if tr.Len() != 0 {
		t.Error("nil tracer has nonzero length")
	}
	if tr.Utilization(time.Second) != nil {
		t.Error("nil tracer returned utilization")
	}
	if tr.Summary(time.Second) == "" {
		t.Error("nil tracer Summary empty")
	}
}

func TestRecordAndSort(t *testing.T) {
	tr := New(2)
	tr.Record(Event{PE: 1, Kind: EvSend, At: 30})
	tr.Record(Event{PE: 0, Kind: EvBegin, At: 10})
	tr.Record(Event{PE: 0, Kind: EvEnd, At: 20})
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events not time-sorted")
		}
	}
	// Out-of-range PEs are dropped, not panicking.
	tr.Record(Event{PE: 99, Kind: EvBegin})
	tr.Record(Event{PE: -1, Kind: EvBegin})
	if tr.Len() != 3 {
		t.Errorf("out-of-range events recorded: len=%d", tr.Len())
	}
}

func TestUtilization(t *testing.T) {
	tr := New(2)
	// PE 0 busy [0,50ms) and [75ms,100ms) => 75%.
	tr.Record(Event{PE: 0, Kind: EvBegin, At: 0})
	tr.Record(Event{PE: 0, Kind: EvEnd, At: 50 * time.Millisecond})
	tr.Record(Event{PE: 0, Kind: EvBegin, At: 75 * time.Millisecond})
	tr.Record(Event{PE: 0, Kind: EvEnd, At: 100 * time.Millisecond})
	// PE 1: open-ended Begin at 90ms => busy 10% of horizon.
	tr.Record(Event{PE: 1, Kind: EvBegin, At: 90 * time.Millisecond})

	u := tr.Utilization(100 * time.Millisecond)
	if math.Abs(u[0]-0.75) > 1e-9 {
		t.Errorf("PE0 utilization = %v, want 0.75", u[0])
	}
	if math.Abs(u[1]-0.10) > 1e-9 {
		t.Errorf("PE1 utilization = %v, want 0.10", u[1])
	}
	if tr.Summary(100*time.Millisecond) == "" {
		t.Error("empty summary")
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(4)
	var wg sync.WaitGroup
	for pe := 0; pe < 4; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(Event{PE: pe, Kind: EvSend, At: time.Duration(i)})
			}
		}(pe)
	}
	wg.Wait()
	if tr.Len() != 4000 {
		t.Errorf("len = %d, want 4000", tr.Len())
	}
}

func TestKindString(t *testing.T) {
	for k := EvBegin; k <= EvNote; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty string")
	}
}
