package trace

import (
	"strings"
	"testing"
	"time"
)

func TestReadSnapshotMalformed(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "empty input"},
		{"whitespace only", "   \n\t ", "empty input"},
		{"truncated", `{"node":0,"pe_lo":0,"pe_hi":4,"events":[{"pe":1,"k":0,`, "truncated"},
		{"garbage", "\x00\x01\x02 not json at all", "not JSON"},
		{"wrong shape", `{"node":"zero","pe_lo":0,"pe_hi":4}`, "wrong type"},
		{"wrong document", `{"series":[{"name":"x","value":3}]}`, "not a trace snapshot"},
		{"inverted PE range", `{"node":0,"pe_lo":4,"pe_hi":2}`, "invalid PE range"},
		{"negative event PE", `{"node":0,"pe_lo":0,"pe_hi":2,"events":[{"pe":-1,"k":0,"at":5}]}`, "negative PE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSnapshot(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("ReadSnapshot(%q) succeeded, want error containing %q", tc.input, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadSnapshotRoundTrip(t *testing.T) {
	tr := New(2)
	tr.Record(Event{PE: 0, Kind: EvSend, At: time.Millisecond, MsgID: 7})
	tr.Record(Event{PE: 1, Kind: EvBegin, At: 2 * time.Millisecond, MsgID: 7})
	var buf strings.Builder
	if err := tr.Snapshot(3, 0, 2, 5*time.Millisecond).Write(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshot(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if s.Node != 3 || s.PEHi != 2 || len(s.Events) != 2 {
		t.Errorf("round trip lost data: node=%d pe_hi=%d events=%d", s.Node, s.PEHi, len(s.Events))
	}
}

func TestCursorIncrementalRead(t *testing.T) {
	tr := New(2)
	c := tr.NewCursor()

	// Nothing recorded yet.
	if evs := c.ReadNew(nil); len(evs) != 0 {
		t.Fatalf("fresh cursor read %d events", len(evs))
	}

	tr.Record(Event{PE: 0, Kind: EvSend, At: 1, MsgID: 10})
	tr.Record(Event{PE: 1, Kind: EvBegin, At: 2, MsgID: 10})
	evs := c.ReadNew(nil)
	if len(evs) != 2 {
		t.Fatalf("first read got %d events, want 2", len(evs))
	}
	if evs[0].At > evs[1].At {
		t.Error("read not time-sorted")
	}

	// A second read returns only events recorded since.
	tr.Record(Event{PE: 0, Kind: EvEnd, At: 3, MsgID: 10})
	evs = c.ReadNew(nil)
	if len(evs) != 1 || evs[0].Kind != EvEnd {
		t.Fatalf("incremental read got %+v, want the one new EvEnd", evs)
	}
	if evs = c.ReadNew(nil); len(evs) != 0 {
		t.Fatalf("drained cursor read %d events", len(evs))
	}
	if c.Skipped() != 0 {
		t.Errorf("skipped %d without wrap", c.Skipped())
	}

	// A cursor created mid-run starts at the tail, not the beginning.
	late := tr.NewCursor()
	if evs := late.ReadNew(nil); len(evs) != 0 {
		t.Fatalf("late cursor replayed %d old events", len(evs))
	}
}

func TestCursorWrapSkips(t *testing.T) {
	tr := NewWithCapacity(1, 4)
	c := tr.NewCursor()
	for i := 0; i < 10; i++ {
		tr.Record(Event{PE: 0, Kind: EvNote, At: time.Duration(i), Arg1: int64(i)})
	}
	evs := c.ReadNew(nil)
	// Ring holds 4; the 6 oldest were overwritten before the read.
	if len(evs) != 4 {
		t.Fatalf("read %d events after wrap, want 4", len(evs))
	}
	if got := c.Skipped(); got != 6 {
		t.Errorf("Skipped() = %d, want 6", got)
	}
	// The survivors are the newest, in order.
	for i, ev := range evs {
		if ev.Arg1 != int64(6+i) {
			t.Errorf("event %d has Arg1 %d, want %d", i, ev.Arg1, 6+i)
		}
	}
}

func TestCursorNilTracer(t *testing.T) {
	var tr *Tracer
	c := tr.NewCursor()
	if evs := c.ReadNew(nil); len(evs) != 0 {
		t.Fatalf("nil-tracer cursor read %d events", len(evs))
	}
	if c.Skipped() != 0 {
		t.Error("nil-tracer cursor skipped events")
	}
}
