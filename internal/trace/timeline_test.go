package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRenderTimeline(t *testing.T) {
	tr := New(2)
	// PE 0 busy for the first half of a 100ms horizon.
	tr.Record(Event{PE: 0, Kind: EvBegin, At: 0})
	tr.Record(Event{PE: 0, Kind: EvEnd, At: 50 * time.Millisecond})
	// PE 1 idle throughout.
	var buf bytes.Buffer
	tr.RenderTimeline(&buf, 100*time.Millisecond, 10)
	out := buf.String()
	if !strings.Contains(out, "PE   0") || !strings.Contains(out, "PE   1") {
		t.Fatalf("missing PE rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// PE 0's row should contain full-shade columns; PE 1's none.
	if !strings.Contains(lines[1], "█") {
		t.Errorf("busy PE has no full-shade cells: %q", lines[1])
	}
	if strings.ContainsAny(lines[2], "░▒▓█") {
		t.Errorf("idle PE has shaded cells: %q", lines[2])
	}
}

func TestBusyPerBucketFractions(t *testing.T) {
	tr := New(1)
	// Busy [10ms, 15ms) within a 40ms horizon, 4 buckets of 10ms:
	// bucket 1 should be exactly 50% busy.
	tr.Record(Event{PE: 0, Kind: EvBegin, At: 10 * time.Millisecond})
	tr.Record(Event{PE: 0, Kind: EvEnd, At: 15 * time.Millisecond})
	busy := tr.busyPerBucket(0, 40*time.Millisecond, 4)
	want := []float64{0, 0.5, 0, 0}
	for i := range want {
		if math.Abs(busy[i]-want[i]) > 1e-9 {
			t.Errorf("bucket %d = %v, want %v", i, busy[i], want[i])
		}
	}
	// Open-ended Begin extends to the horizon.
	tr2 := New(1)
	tr2.Record(Event{PE: 0, Kind: EvBegin, At: 30 * time.Millisecond})
	busy2 := tr2.busyPerBucket(0, 40*time.Millisecond, 4)
	if math.Abs(busy2[3]-1.0) > 1e-9 {
		t.Errorf("open-ended span: bucket 3 = %v, want 1", busy2[3])
	}
}

func TestRenderTimelineDegenerate(t *testing.T) {
	var nilTr *Tracer
	var buf bytes.Buffer
	nilTr.RenderTimeline(&buf, time.Second, 10)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("nil tracer timeline missing placeholder")
	}
	tr := New(1)
	buf.Reset()
	tr.RenderTimeline(&buf, 0, 10)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("zero horizon timeline missing placeholder")
	}
}

func TestShadeMonotone(t *testing.T) {
	order := []rune{' ', '░', '▒', '▓', '█'}
	idx := func(r rune) int {
		for i, x := range order {
			if x == r {
				return i
			}
		}
		return -1
	}
	prev := -1
	for f := 0.0; f <= 1.0; f += 0.05 {
		i := idx(shade(f))
		if i < 0 {
			t.Fatalf("shade(%v) produced unknown rune", f)
		}
		if i < prev {
			t.Fatalf("shade not monotone at %v", f)
		}
		prev = i
	}
}
