// Package trace provides lightweight event tracing for GridMDO executors,
// in the spirit of Charm++'s Projections logs: per-PE streams of handler
// begin/end and message send/enqueue events from which utilization
// timelines are derived. Tracing is optional; a nil *Tracer is a valid
// no-op everywhere.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	EvBegin   Kind = iota // handler execution began
	EvEnd                 // handler execution ended
	EvSend                // message sent
	EvEnqueue             // message enqueued at destination PE
	EvIdle                // scheduler went idle
	EvNote                // free-form annotation
)

func (k Kind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvEnd:
		return "end"
	case EvSend:
		return "send"
	case EvEnqueue:
		return "enqueue"
	case EvIdle:
		return "idle"
	case EvNote:
		return "note"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record. Arg1/Arg2 carry kind-specific payloads
// (array/element IDs, message sizes) without coupling this package to the
// runtime's types.
type Event struct {
	PE   int
	Kind Kind
	At   time.Duration // virtual or wall time since run start
	Arg1 int64
	Arg2 int64
	Note string
}

// Sink receives executor events. It is the one instrumentation surface
// executors emit to: a *Tracer is a Sink, the metrics adapters in core are
// Sinks, and Tee fans one Record call out to several — so adding metrics
// next to tracing costs no second instrumentation call site in the
// scheduler. Implementations must be safe for concurrent Record calls and
// must not block.
type Sink interface {
	Record(Event)
}

// multiSink fans events out to several sinks.
type multiSink []Sink

// Record implements Sink.
func (m multiSink) Record(ev Event) {
	for _, s := range m {
		s.Record(ev)
	}
}

// Tee combines sinks into one, dropping nils (an untyped nil and a nil
// *Tracer alike). It returns nil when nothing remains, a single sink
// unwrapped, and a fan-out otherwise — so the executor's per-event cost
// matches the sinks actually configured.
func Tee(sinks ...Sink) Sink {
	var live multiSink
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if t, ok := s.(*Tracer); ok && t == nil {
			continue
		}
		live = append(live, s)
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// Tracer collects events, sharded per PE to keep contention low in the
// real-time runtime. The zero value is unusable; call New. Tracer
// implements Sink; a nil *Tracer records nothing.
type Tracer struct {
	shards []shard
}

type shard struct {
	mu     sync.Mutex
	events []Event
	_      [40]byte // pad to reduce false sharing between PE shards
}

// New builds a tracer for numPE processing elements.
func New(numPE int) *Tracer {
	return &Tracer{shards: make([]shard, numPE)}
}

// Record appends an event. Safe for concurrent use; nil-safe.
func (t *Tracer) Record(ev Event) {
	if t == nil || ev.PE < 0 || ev.PE >= len(t.shards) {
		return
	}
	s := &t.shards[ev.PE]
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a time-sorted copy of all recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var all []Event
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		all = append(all, s.events...)
		s.mu.Unlock()
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// Len reports the total number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Utilization reports, per PE, the fraction of [0, horizon) spent inside
// handlers, derived from Begin/End pairs. Unpaired events are tolerated
// (a Begin without End counts as busy until the horizon).
func (t *Tracer) Utilization(horizon time.Duration) []float64 {
	if t == nil || horizon <= 0 {
		return nil
	}
	util := make([]float64, len(t.shards))
	for pe := range t.shards {
		s := &t.shards[pe]
		s.mu.Lock()
		evs := append([]Event(nil), s.events...)
		s.mu.Unlock()
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		var busy time.Duration
		var openAt time.Duration = -1
		for _, ev := range evs {
			switch ev.Kind {
			case EvBegin:
				if openAt < 0 {
					openAt = ev.At
				}
			case EvEnd:
				if openAt >= 0 {
					end := ev.At
					if end > horizon {
						end = horizon
					}
					if end > openAt {
						busy += end - openAt
					}
					openAt = -1
				}
			}
		}
		if openAt >= 0 && openAt < horizon {
			busy += horizon - openAt
		}
		util[pe] = float64(busy) / float64(horizon)
	}
	return util
}

// Summary renders a short human-readable utilization report.
func (t *Tracer) Summary(horizon time.Duration) string {
	u := t.Utilization(horizon)
	if u == nil {
		return "trace: no data"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %v\n", t.Len(), horizon)
	for pe, f := range u {
		fmt.Fprintf(&b, "  PE %2d: %5.1f%% busy\n", pe, 100*f)
	}
	return b.String()
}
