// Package trace provides lightweight causal event tracing for GridMDO
// executors, in the spirit of Charm++'s Projections logs: per-PE streams
// of handler begin/end and message send/enqueue events, linked into a
// cross-node DAG by message IDs, from which utilization timelines, overlap
// profiles (compute vs. comm-wait vs. masked latency) and critical paths
// are derived. Tracing is optional; a nil *Tracer is a valid no-op
// everywhere.
package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	EvBegin   Kind = iota // handler execution began
	EvEnd                 // handler execution ended
	EvSend                // message sent
	EvEnqueue             // message enqueued at destination PE
	EvIdle                // scheduler went idle (At = start, Arg1 = duration ns)
	EvNote                // free-form annotation
	EvBlock               // AMPI rank suspended waiting for a message (Arg1 = rank)
	EvWake                // AMPI rank resumed by a matching message (Arg1 = rank, Arg2 = blocked ns)
)

func (k Kind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvEnd:
		return "end"
	case EvSend:
		return "send"
	case EvEnqueue:
		return "enqueue"
	case EvIdle:
		return "idle"
	case EvNote:
		return "note"
	case EvBlock:
		return "block"
	case EvWake:
		return "wake"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record. Arg1/Arg2 carry kind-specific payloads
// (array/element IDs, message sizes) without coupling this package to the
// runtime's types.
//
// MsgID and Parent carry the causal context. On EvSend/EvEnqueue, MsgID
// identifies the message in flight and Parent is the ID of the message
// whose handler sent it (0 when sent outside a handler). On EvBegin/EvEnd,
// MsgID identifies the message being executed. IDs are node-unique (the
// runtime seeds them with the node number in the high bits), so events
// merged from several gridnode snapshots still form one DAG.
type Event struct {
	PE      int
	Kind    Kind
	MsgKind byte          // runtime message kind (core.Kind) for Send/Enqueue/Begin/End
	At      time.Duration // virtual or wall time since run start
	MsgID   uint64
	Parent  uint64
	Arg1    int64
	Arg2    int64
	Note    string
}

// Sink receives executor events. It is the one instrumentation surface
// executors emit to: a *Tracer is a Sink, the metrics adapters in core are
// Sinks, and Tee fans one Record call out to several — so adding metrics
// next to tracing costs no second instrumentation call site in the
// scheduler. Implementations must be safe for concurrent Record calls and
// must not block.
type Sink interface {
	Record(Event)
}

// multiSink fans events out to several sinks.
type multiSink []Sink

// Record implements Sink.
func (m multiSink) Record(ev Event) {
	for _, s := range m {
		s.Record(ev)
	}
}

// Tee combines sinks into one, dropping nils (an untyped nil and a nil
// *Tracer alike). It returns nil when nothing remains, a single sink
// unwrapped, and a fan-out otherwise — so the executor's per-event cost
// matches the sinks actually configured.
func Tee(sinks ...Sink) Sink {
	var live multiSink
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if t, ok := s.(*Tracer); ok && t == nil {
			continue
		}
		live = append(live, s)
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// DefaultCapacity is the per-PE ring size used by New: large enough for
// the paper-scale experiments (~10k events/PE) with headroom, small enough
// (~2.5 MB/PE) that tracing a 64-PE soak run stays bounded.
const DefaultCapacity = 1 << 15

// DrainedCapacity is the per-PE ring size appropriate when a telemetry
// agent continuously drains the ring through a Cursor: the ring only has
// to hold one reporting interval's events, not the whole run. Size is
// not just memory — Event holds a string, so the GC scans every resident
// slot on every cycle, and on a busy host an oversized ring taxes the
// mutator far more than the lock-free Record path does (the telemetry
// bench prices DefaultCapacity at >10% of stencil step time on one core,
// DrainedCapacity at noise level).
const DrainedCapacity = 1 << 12

// Tracer collects events into bounded per-PE ring buffers. Record is
// lock-free and allocation-free: a shard claims a slot with one atomic add
// and overwrites the oldest event once the ring wraps, so a tracer left on
// for a long soak run costs fixed memory and loses only the oldest
// history. The zero value is unusable; call New or NewWithCapacity.
// Tracer implements Sink; a nil *Tracer records nothing.
//
// Readers (Events, Len, Utilization, ...) are meant for quiescence — after
// Run returns or between phases. They take consistent snapshots of slots
// the writers have finished, but a Record racing a read may leave the ring
// momentarily short one in-flight event.
type Tracer struct {
	shards []ring
}

// ring is one PE's bounded event buffer. pos counts events ever recorded;
// slot i lives at buf[i&mask]. The pad keeps neighboring shards' hot
// counters on different cache lines.
type ring struct {
	pos  atomic.Uint64
	_    [56]byte
	buf  []Event
	mask uint64
}

// New builds a tracer for numPE processing elements with DefaultCapacity
// events per PE.
func New(numPE int) *Tracer {
	return NewWithCapacity(numPE, DefaultCapacity)
}

// NewWithCapacity builds a tracer whose per-PE rings hold capacity events
// (rounded up to a power of two, minimum 1). Older events are overwritten
// once a ring fills; Dropped reports how many.
func NewWithCapacity(numPE, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	c := 1 << bits.Len(uint(capacity-1)) // next power of two
	t := &Tracer{shards: make([]ring, numPE)}
	for i := range t.shards {
		t.shards[i].buf = make([]Event, c)
		t.shards[i].mask = uint64(c - 1)
	}
	return t
}

// Record appends an event. Lock-free, allocation-free, safe for
// concurrent use, nil-safe.
func (t *Tracer) Record(ev Event) {
	if t == nil || ev.PE < 0 || ev.PE >= len(t.shards) {
		return
	}
	s := &t.shards[ev.PE]
	i := s.pos.Add(1) - 1
	s.buf[i&s.mask] = ev
}

// shardEvents copies one PE's retained events in recording order.
func (t *Tracer) shardEvents(pe int) []Event {
	s := &t.shards[pe]
	n := s.pos.Load()
	c := uint64(len(s.buf))
	if n <= c {
		return append([]Event(nil), s.buf[:n]...)
	}
	// The ring wrapped: the oldest retained event sits at pos&mask.
	out := make([]Event, 0, c)
	start := n & s.mask
	out = append(out, s.buf[start:]...)
	out = append(out, s.buf[:start]...)
	return out
}

// Events returns a time-sorted copy of all retained events. Meant to be
// called at quiescence (after the run finishes).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var all []Event
	for pe := range t.shards {
		all = append(all, t.shardEvents(pe)...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// Len reports the total number of retained events (at most capacity per
// PE; see Dropped for overwritten history).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := uint64(0)
	for i := range t.shards {
		s := &t.shards[i]
		p := s.pos.Load()
		if c := uint64(len(s.buf)); p > c {
			p = c
		}
		n += p
	}
	return int(n)
}

// Dropped reports how many events were overwritten by ring wrap-around
// across all PEs. Nonzero Dropped means timelines and critical paths are
// missing their oldest history.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	d := uint64(0)
	for i := range t.shards {
		s := &t.shards[i]
		if p, c := s.pos.Load(), uint64(len(s.buf)); p > c {
			d += p - c
		}
	}
	return d
}

// NumPE reports the number of PE shards the tracer was built with.
func (t *Tracer) NumPE() int {
	if t == nil {
		return 0
	}
	return len(t.shards)
}

// Cursor reads a tracer incrementally: each ReadNew call returns the
// events recorded since the previous call, so a telemetry agent can ship
// periodic digests without rescanning (or double-counting) the whole
// ring. One cursor tracks one consumer; cursors are independent and a
// cursor must not be shared between goroutines without external locking.
//
// The same quiescence caveat as Events applies per call: a Record racing
// ReadNew may leave its slot half-written or deliver it on the next
// call. When a ring wraps past the cursor between calls the overwritten
// events are gone; Skipped reports how many, and the cursor jumps
// forward to the oldest event still retained.
type Cursor struct {
	t       *Tracer
	pos     []uint64 // per-shard read position (events consumed so far)
	scratch []Event  // merge buffer, reused across ReadNew calls
	skipped uint64
}

// NewCursor returns a cursor positioned at the tracer's current tail:
// the first ReadNew returns only events recorded after this call. A nil
// tracer yields a valid cursor that always reads nothing.
func (t *Tracer) NewCursor() *Cursor {
	c := &Cursor{t: t}
	if t == nil {
		return c
	}
	c.pos = make([]uint64, len(t.shards))
	for i := range t.shards {
		c.pos[i] = t.shards[i].pos.Load()
	}
	return c
}

// ReadNew appends to dst the events recorded since the last call (or
// since NewCursor), time-sorted, and returns the extended slice.
func (c *Cursor) ReadNew(dst []Event) []Event {
	if c.t == nil {
		return dst
	}
	base := len(dst)
	bounds := make([]int, 1, len(c.t.shards)+1)
	for pe := range c.t.shards {
		s := &c.t.shards[pe]
		n := s.pos.Load()
		lo := c.pos[pe]
		if n == lo {
			continue
		}
		cap64 := uint64(len(s.buf))
		if n-lo > cap64 {
			// The ring lapped the cursor; the oldest unread events were
			// overwritten. Resume at the oldest slot still retained.
			c.skipped += n - lo - cap64
			lo = n - cap64
		}
		for i := lo; i < n; i++ {
			dst = append(dst, s.buf[i&s.mask])
		}
		c.pos[pe] = n
		bounds = append(bounds, len(dst)-base)
	}
	c.scratch = mergeRuns(dst[base:], bounds, c.scratch)
	return dst
}

// mergeRuns time-sorts evs, given bounds marking consecutive runs
// (evs[bounds[i]:bounds[i+1]]). Each PE shard records in time order, so
// a cursor tail is one sorted run per shard; merging them is a single
// linear pass where a whole-tail stable sort pays O(n log n) block
// rotations — ReadNew dominated telemetry agent tick profiles before
// this. Ties keep run (shard) order, matching the stable sort this
// replaces. A run recorded with out-of-order At values (tests stamp
// events by hand) is sorted before merging. scratch is spare merge
// space, returned (possibly grown) for the caller to reuse.
func mergeRuns(evs []Event, bounds []int, scratch []Event) []Event {
	before := func(run []Event) func(i, j int) bool {
		return func(i, j int) bool { return run[i].At < run[j].At }
	}
	for i := 0; i+1 < len(bounds); i++ {
		run := evs[bounds[i]:bounds[i+1]]
		if !sort.SliceIsSorted(run, before(run)) {
			sort.SliceStable(run, before(run))
		}
	}
	if len(bounds) <= 2 {
		return scratch // zero or one run: nothing to merge
	}
	if cap(scratch) < len(evs) {
		scratch = make([]Event, len(evs))
	}
	tmp := scratch[:len(evs)]
	heads := append([]int(nil), bounds[:len(bounds)-1]...)
	for out := range tmp {
		best := -1
		for r := range heads {
			if heads[r] == bounds[r+1] {
				continue
			}
			if best < 0 || evs[heads[r]].At < evs[heads[best]].At {
				best = r
			}
		}
		tmp[out] = evs[heads[best]]
		heads[best]++
	}
	copy(evs, tmp)
	return scratch
}

// Skipped reports how many events ring wrap-around overwrote before the
// cursor could read them, cumulatively since NewCursor. A growing value
// means the consumer polls slower than the run records.
func (c *Cursor) Skipped() uint64 { return c.skipped }

// Utilization reports, per PE, the fraction of [0, horizon) spent inside
// handlers, derived from Begin/End pairs. Unpaired events are tolerated
// (a Begin without End counts as busy until the horizon). Recorded idle
// spans (EvIdle) are subtracted even when they fall inside an open Begin
// window — an AMPI rank blocked in Recv holds its handler window open
// while the PE is genuinely idle, and counting that as busy would hide
// exactly the latency this tracer exists to measure.
func (t *Tracer) Utilization(horizon time.Duration) []float64 {
	if t == nil || horizon <= 0 {
		return nil
	}
	util := make([]float64, len(t.shards))
	for pe := range t.shards {
		evs := t.shardEvents(pe)
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		spans := subtractSpans(busySpans(evs, horizon), idleSpans(evs, horizon))
		util[pe] = float64(totalSpans(spans)) / float64(horizon)
	}
	return util
}

// Summary renders a short human-readable utilization report.
func (t *Tracer) Summary(horizon time.Duration) string {
	u := t.Utilization(horizon)
	if u == nil {
		return "trace: no data"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %v", t.Len(), horizon)
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, " (%d dropped by ring wrap)", d)
	}
	b.WriteByte('\n')
	for pe, f := range u {
		fmt.Fprintf(&b, "  PE %2d: %5.1f%% busy\n", pe, 100*f)
	}
	return b.String()
}
