package trace

import (
	"testing"
	"time"
)

// The tracing hot path must stay allocation-free whether tracing is off
// (nil tracer — the common case, one predicted branch) or on (ring slot
// claim + copy). CI pins both at 0 allocs/op; BENCH_trace.json records the
// baseline numbers.

func TestTraceDisabledAllocatesNothing(t *testing.T) {
	var tr *Tracer
	ev := Event{PE: 0, Kind: EvSend, MsgID: 1, Parent: 2}
	if n := testing.AllocsPerRun(1000, func() { tr.Record(ev) }); n != 0 {
		t.Fatalf("nil-tracer Record allocates %v/op, want 0", n)
	}
}

func TestTraceRecordAllocatesNothing(t *testing.T) {
	tr := NewWithCapacity(1, 1<<10)
	ev := Event{PE: 0, Kind: EvSend, At: time.Microsecond, MsgID: 1, Parent: 2}
	if n := testing.AllocsPerRun(1000, func() { tr.Record(ev) }); n != 0 {
		t.Fatalf("ring Record allocates %v/op, want 0", n)
	}
}

func BenchmarkTraceRecordDisabled(b *testing.B) {
	var tr *Tracer
	ev := Event{PE: 0, Kind: EvSend, MsgID: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(ev)
	}
}

func BenchmarkTraceRecordRing(b *testing.B) {
	tr := NewWithCapacity(1, 1<<12)
	ev := Event{PE: 0, Kind: EvSend, At: time.Microsecond, MsgID: 1, Parent: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(ev)
	}
}

func BenchmarkTraceRecordRingParallel(b *testing.B) {
	tr := NewWithCapacity(8, 1<<12)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ev := Event{PE: 1, Kind: EvEnqueue, MsgID: 3}
		for pb.Next() {
			tr.Record(ev)
		}
	})
}
