package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteChrome renders a merged, time-sorted event stream as Chrome
// trace-event JSON (the format chrome://tracing and Perfetto's legacy
// importer load directly): handler executions become complete ("X")
// slices, message flights become flow ("s"/"f") arrows from the send to
// the matching enqueue, and notes/block/wake become instants. PIDs are
// nodes (via nodeOf, identity when nil), TIDs are PEs — so a two-gridnode
// run renders as two process lanes with flow arrows crossing them.
func WriteChrome(w io.Writer, evs []Event, nodeOf func(pe int) int) error {
	if nodeOf == nil {
		nodeOf = func(int) int { return 0 }
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	// Handler slices: pair Begin/End per PE in stream order.
	open := make(map[int]Event)
	// Flow arrows need the send side buffered until the enqueue appears.
	sends := make(map[uint64]Event)
	for _, ev := range evs {
		switch ev.Kind {
		case EvBegin:
			open[ev.PE] = ev
		case EvEnd:
			b, ok := open[ev.PE]
			if !ok {
				continue
			}
			delete(open, ev.PE)
			emit(`{"name":"handler","cat":"handler","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"msg":%d,"kind":%d}}`,
				us(b.At), us(ev.At-b.At), nodeOf(ev.PE), ev.PE, b.MsgID, b.MsgKind)
		case EvSend:
			if ev.MsgID != 0 {
				if _, ok := sends[ev.MsgID]; !ok {
					sends[ev.MsgID] = ev
				}
			}
		case EvEnqueue:
			s, ok := sends[ev.MsgID]
			if !ok || ev.At < s.At {
				continue
			}
			emit(`{"name":"msg","cat":"flow","ph":"s","id":%d,"ts":%.3f,"pid":%d,"tid":%d}`,
				ev.MsgID, us(s.At), nodeOf(s.PE), s.PE)
			emit(`{"name":"msg","cat":"flow","ph":"f","bp":"e","id":%d,"ts":%.3f,"pid":%d,"tid":%d}`,
				ev.MsgID, us(ev.At), nodeOf(ev.PE), ev.PE)
		case EvIdle:
			emit(`{"name":"idle","cat":"sched","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d}`,
				us(ev.At), us(time.Duration(ev.Arg1)), nodeOf(ev.PE), ev.PE)
		case EvNote:
			emit(`{"name":%s,"cat":"note","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"a1":%d,"a2":%d}}`,
				strconv.Quote(ev.Note), us(ev.At), nodeOf(ev.PE), ev.PE, ev.Arg1, ev.Arg2)
		case EvBlock:
			emit(`{"name":"rank-block","cat":"ampi","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"rank":%d}}`,
				us(ev.At), nodeOf(ev.PE), ev.PE, ev.Arg1)
		case EvWake:
			emit(`{"name":"rank-wake","cat":"ampi","ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"rank":%d,"blocked_ns":%d,"msg":%d}}`,
				us(ev.At), nodeOf(ev.PE), ev.PE, ev.Arg1, ev.Arg2, ev.MsgID)
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}
