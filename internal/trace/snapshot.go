package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is the on-disk form of one node's trace: gridnode/gridsim write
// one JSON snapshot per process, and cmd/gridtrace merges them back into a
// single cross-node event stream (message IDs are node-unique, so merged
// events still link into one DAG).
type Snapshot struct {
	Node    int         `json:"node"`
	PELo    int         `json:"pe_lo"`
	PEHi    int         `json:"pe_hi"`
	Horizon int64       `json:"horizon_ns"`
	Dropped uint64      `json:"dropped"`
	Events  []SnapEvent `json:"events"`

	// EpochUnixNs is the wall-clock instant (UnixNano) event times are
	// relative to. Separate processes have different epochs — each starts
	// its clock at runtime construction — so Merge uses this, when
	// present, to re-base every node onto the earliest epoch. Zero means
	// unknown (pre-epoch snapshots, or an in-process shared clock).
	EpochUnixNs int64 `json:"epoch_ns,omitempty"`
}

// SnapEvent is Event with compact JSON keys; zero fields are omitted to
// keep paper-scale snapshots in the few-MB range.
type SnapEvent struct {
	PE      int    `json:"pe"`
	Kind    Kind   `json:"k"`
	At      int64  `json:"at"` // ns since run start
	MsgID   uint64 `json:"m,omitempty"`
	Parent  uint64 `json:"p,omitempty"`
	MsgKind byte   `json:"mk,omitempty"`
	Arg1    int64  `json:"a1,omitempty"`
	Arg2    int64  `json:"a2,omitempty"`
	Note    string `json:"n,omitempty"`
}

// Snapshot captures the tracer's retained events for the PEs this node
// hosts. Call at quiescence.
func (t *Tracer) Snapshot(node, peLo, peHi int, horizon time.Duration) *Snapshot {
	s := &Snapshot{Node: node, PELo: peLo, PEHi: peHi, Horizon: int64(horizon)}
	if t == nil {
		return s
	}
	s.Dropped = t.Dropped()
	for _, ev := range t.Events() {
		s.Events = append(s.Events, SnapEvent{
			PE: ev.PE, Kind: ev.Kind, At: int64(ev.At),
			MsgID: ev.MsgID, Parent: ev.Parent, MsgKind: ev.MsgKind,
			Arg1: ev.Arg1, Arg2: ev.Arg2, Note: ev.Note,
		})
	}
	return s
}

// Write serializes the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSnapshot parses one snapshot file. Malformed input — empty files
// (a run killed before the exit flush), truncated JSON (disk filled
// mid-write), or non-snapshot content — returns a descriptive error
// naming the failure mode, so a multi-file merge can report which file
// is bad and move on instead of surfacing a bare decoder message.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	dec := json.NewDecoder(r)
	var s Snapshot
	switch err := dec.Decode(&s); {
	case err == io.EOF:
		return nil, fmt.Errorf("trace snapshot: empty input (run killed before the exit flush?)")
	case err == io.ErrUnexpectedEOF:
		return nil, fmt.Errorf("trace snapshot: truncated JSON (write interrupted?)")
	case err != nil:
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return nil, fmt.Errorf("trace snapshot: not JSON at byte %d: %w", syn.Offset, err)
		}
		var typ *json.UnmarshalTypeError
		if errors.As(err, &typ) {
			return nil, fmt.Errorf("trace snapshot: field %q has wrong type: %w", typ.Field, err)
		}
		return nil, fmt.Errorf("trace snapshot: %w", err)
	}
	// Catch JSON that parses but clearly isn't a snapshot (e.g. a metrics
	// file passed by mistake): a real snapshot always covers at least one
	// PE, and event PEs sit inside the declared range.
	if s.PEHi < s.PELo {
		return nil, fmt.Errorf("trace snapshot: invalid PE range [%d,%d)", s.PELo, s.PEHi)
	}
	if s.PEHi == 0 && s.PELo == 0 && len(s.Events) == 0 && s.Horizon == 0 {
		return nil, fmt.Errorf("trace snapshot: no PE range, events, or horizon — not a trace snapshot?")
	}
	for i, se := range s.Events {
		if se.PE < 0 {
			return nil, fmt.Errorf("trace snapshot: event %d has negative PE %d", i, se.PE)
		}
	}
	return &s, nil
}

// Merge combines per-node snapshots into one time-sorted event stream,
// returning the stream, the number of PEs covered, and the latest horizon.
// Snapshots that carry an epoch (separate gridnode processes each start
// their clock at runtime construction) are re-based onto the earliest
// epoch, so cross-node spans come out in one time base up to OS clock
// sync; snapshots without an epoch are assumed pre-aligned (the
// in-process multi-node harness shares one clock).
func Merge(snaps ...*Snapshot) (evs []Event, numPE int, horizon time.Duration) {
	var baseEpoch int64
	for _, s := range snaps {
		if s != nil && s.EpochUnixNs != 0 && (baseEpoch == 0 || s.EpochUnixNs < baseEpoch) {
			baseEpoch = s.EpochUnixNs
		}
	}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		var shift time.Duration
		if s.EpochUnixNs != 0 && baseEpoch != 0 {
			shift = time.Duration(s.EpochUnixNs - baseEpoch)
		}
		if s.PEHi > numPE {
			numPE = s.PEHi
		}
		if h := time.Duration(s.Horizon) + shift; h > horizon {
			horizon = h
		}
		for _, se := range s.Events {
			evs = append(evs, Event{
				PE: se.PE, Kind: se.Kind, At: time.Duration(se.At) + shift,
				MsgID: se.MsgID, Parent: se.Parent, MsgKind: se.MsgKind,
				Arg1: se.Arg1, Arg2: se.Arg2, Note: se.Note,
			})
			if se.PE+1 > numPE {
				numPE = se.PE + 1
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs, numPE, horizon
}
