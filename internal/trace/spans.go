package trace

import (
	"sort"
	"time"
)

// Span is a half-open time interval [Start, End) on one PE's timeline.
// The span helpers below form the small interval algebra everything in
// this package is built on: utilization and timelines use busy−idle,
// the overlap profiler intersects message flights with busy/idle time.
type Span struct {
	Start, End time.Duration
}

// Dur returns the span length (never negative).
func (s Span) Dur() time.Duration {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// busySpans extracts handler-execution spans from time-sorted events:
// each Begin opens a span closed by the next End, clamped to [0, horizon).
// An unmatched Begin counts as busy to the horizon; nested Begins are
// tolerated (the outermost window wins).
func busySpans(evs []Event, horizon time.Duration) []Span {
	var spans []Span
	var openAt time.Duration = -1
	for _, ev := range evs {
		switch ev.Kind {
		case EvBegin:
			if openAt < 0 {
				openAt = ev.At
			}
		case EvEnd:
			if openAt >= 0 {
				spans = append(spans, clampSpan(Span{openAt, ev.At}, horizon))
				openAt = -1
			}
		}
	}
	if openAt >= 0 && openAt < horizon {
		spans = append(spans, Span{openAt, horizon})
	}
	return normalizeSpans(spans)
}

// idleSpans extracts recorded scheduler-idle spans (EvIdle: At = start,
// Arg1 = duration in nanoseconds), clamped to [0, horizon).
func idleSpans(evs []Event, horizon time.Duration) []Span {
	var spans []Span
	for _, ev := range evs {
		if ev.Kind != EvIdle {
			continue
		}
		spans = append(spans, clampSpan(Span{ev.At, ev.At + time.Duration(ev.Arg1)}, horizon))
	}
	return normalizeSpans(spans)
}

func clampSpan(s Span, horizon time.Duration) Span {
	if s.Start < 0 {
		s.Start = 0
	}
	if s.End > horizon {
		s.End = horizon
	}
	return s
}

// normalizeSpans sorts spans, drops empty ones, and merges overlaps so the
// result is a disjoint ascending sequence.
func normalizeSpans(spans []Span) []Span {
	out := spans[:0]
	for _, s := range spans {
		if s.End > s.Start {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	merged := out[:0]
	for _, s := range out {
		if n := len(merged); n > 0 && s.Start <= merged[n-1].End {
			if s.End > merged[n-1].End {
				merged[n-1].End = s.End
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// subtractSpans returns a − b. Both inputs must be normalized (disjoint,
// ascending); the result is too.
func subtractSpans(a, b []Span) []Span {
	var out []Span
	j := 0
	for _, s := range a {
		cur := s
		for j < len(b) && b[j].End <= cur.Start {
			j++
		}
		k := j
		for k < len(b) && b[k].Start < cur.End {
			if b[k].Start > cur.Start {
				out = append(out, Span{cur.Start, b[k].Start})
			}
			if b[k].End >= cur.End {
				cur.Start = cur.End
				break
			}
			cur.Start = b[k].End
			k++
		}
		if cur.End > cur.Start {
			out = append(out, cur)
		}
	}
	return out
}

// intersectSpans returns a ∩ b. Both inputs must be normalized; the
// result is too.
func intersectSpans(a, b []Span) []Span {
	var out []Span
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			out = append(out, Span{lo, hi})
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// clipSpans restricts normalized spans to the window [from, to).
func clipSpans(spans []Span, from, to time.Duration) []Span {
	var out []Span
	for _, s := range spans {
		if s.End <= from || s.Start >= to {
			continue
		}
		c := s
		if c.Start < from {
			c.Start = from
		}
		if c.End > to {
			c.End = to
		}
		out = append(out, c)
	}
	return out
}

// totalSpans sums the lengths of normalized spans.
func totalSpans(spans []Span) time.Duration {
	var d time.Duration
	for _, s := range spans {
		d += s.Dur()
	}
	return d
}
